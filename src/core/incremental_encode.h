#ifndef M2G_CORE_INCREMENTAL_ENCODE_H_
#define M2G_CORE_INCREMENTAL_ENCODE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/multi_level_graph.h"
#include "tensor/matrix.h"

namespace m2g::core {

/// Everything a warm GAT-e encode of one level graph leaves behind that a
/// single-node delta can reuse: per-layer node representations h_0..h_K,
/// per-layer edge representations z_0..z_K, and the per-(layer, head)
/// z*W3 products and s_edge columns — the two n^2-sized intermediates
/// whose recomputation would otherwise dominate a delta step.
///
/// Edge-indexed buffers (z, ew3, se) store pair (i, j) at row
/// i*cap + j with a fixed padded stride `cap`, independent of the current
/// node count: an order arriving at the end of the node ordering (the
/// common case — the feature extractor sorts pending orders by ascending
/// id, so new ids append) leaves every cached row in place, and an
/// insert/removal in the middle is an in-place row shift. Capacity grows
/// geometrically on full encodes; a delta that would exceed `cap` falls
/// back instead.
///
/// All buffers are pool-backed Matrices with value semantics: they may
/// outlive any request arena and be freed from another thread, so a
/// session store can hold caches long-lived across serving threads.
struct LevelEncodeCache {
  int cap = 0;     // padded node capacity (pair-row stride)
  int n = 0;       // node count currently encoded (0 = cold)
  int hidden = 0;  // d
  int layers = 0;  // K
  int heads = 0;   // P

  std::vector<Matrix> h;    // K+1 entries, (cap, d)
  std::vector<Matrix> z;    // K+1 entries, (cap*cap, d)
  std::vector<Matrix> ew3;  // K*P entries, (cap*cap, dh_l)
  std::vector<Matrix> se;   // K*P entries, (cap*cap, 1)

  bool warm() const { return n > 0; }
  void Reset() { *this = LevelEncodeCache(); }
  /// Approximate heap footprint (the float payloads; bookkeeping is
  /// noise) — the unit of the session store's byte budget.
  size_t bytes() const;
};

/// Why a PredictIncremental call did not (or could not) take the delta
/// path. kNone means the delta path ran.
enum class IncrementalFallback {
  kNone = 0,
  /// Kill switch off, BiLSTM ablation, or grad mode: sessions inert.
  kDisabled,
  /// No warm state yet (first request of a session, or after Reset).
  kCold,
  /// The global/courier embedding changed bitwise (weather, time bucket,
  /// courier stats): it feeds every node, so everything is dirty.
  kGlobalChanged,
  /// A level diff was not single-node-explainable.
  kStructural,
  /// A level outgrew its cache capacity.
  kCapacity,
  /// Scheduled k-th-update refresh (incremental_refresh_period).
  kRefresh,
  /// The delta dirtied too many nodes to be worth it (e.g. the courier
  /// moved, shifting every node's relative features).
  kDirtySpread,
};

/// Outcome report for tests, wide events and the bench.
struct IncrementalResult {
  bool delta = false;  // true when the delta path produced the encodings
  IncrementalFallback fallback = IncrementalFallback::kNone;
};

/// Per-courier incremental-encode state: the caches for both levels, the
/// global embedding and graphs they encode, and the staleness counter.
struct IncrementalState {
  bool warm = false;
  Matrix u;                      // cached global embedding value
  graph::MultiLevelGraph graph;  // the graphs the caches encode
  LevelEncodeCache location;
  LevelEncodeCache aoi;
  uint64_t deltas_since_full = 0;

  void Reset();
  size_t bytes() const;
};

}  // namespace m2g::core

#endif  // M2G_CORE_INCREMENTAL_ENCODE_H_
