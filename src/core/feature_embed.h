#ifndef M2G_CORE_FEATURE_EMBED_H_
#define M2G_CORE_FEATURE_EMBED_H_

#include <memory>

#include "core/config.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "synth/dataset.h"

namespace m2g::core {

/// Eq. 18-19: projects one graph level's raw features into model space.
/// Continuous features go through a linear layer; discrete features (AOI
/// id, AOI type) through embedding tables; the pieces are concatenated so
/// the node embedding has exactly `hidden_dim` columns. Edge features get
/// a linear projection to `hidden_dim`.
class LevelFeatureEmbed : public nn::Module {
 public:
  LevelFeatureEmbed(const ModelConfig& config, int continuous_dim,
                    Rng* rng);

  /// (n, hidden_dim) embedded node features.
  Tensor EmbedNodes(const graph::LevelGraph& level) const;

  /// (n*n, hidden_dim) embedded edge features.
  Tensor EmbedEdges(const graph::LevelGraph& level) const;

 private:
  std::unique_ptr<nn::Linear> continuous_proj_;
  std::unique_ptr<nn::Embedding> aoi_id_embed_;
  std::unique_ptr<nn::Embedding> aoi_type_embed_;
  std::unique_ptr<nn::Linear> edge_proj_;
  int aoi_id_vocab_;
};

/// Embeds the global features (Eq. 17): continuous courier profile through
/// a linear layer; weather, weekday and — crucially — the *courier
/// identity* through embeddings (§IV-C concatenates "the courier's
/// embedding and his profile features"; the identity embedding is what
/// lets the model learn per-courier AOI habits). The result is the
/// courier/global vector `u` used by the decoders and concatenated to
/// node features in the encoder.
class GlobalFeatureEmbed : public nn::Module {
 public:
  GlobalFeatureEmbed(const ModelConfig& config, Rng* rng);

  /// (1, courier_dim).
  Tensor Embed(const synth::Sample& sample) const;

 private:
  std::unique_ptr<nn::Linear> continuous_proj_;
  std::unique_ptr<nn::Embedding> weather_embed_;
  std::unique_ptr<nn::Embedding> weekday_embed_;
  std::unique_ptr<nn::Embedding> courier_embed_;
  std::unique_ptr<nn::Linear> out_proj_;
  int courier_id_vocab_;
};

}  // namespace m2g::core

#endif  // M2G_CORE_FEATURE_EMBED_H_
