#ifndef M2G_CORE_GAT_E_H_
#define M2G_CORE_GAT_E_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/encode_plan.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace m2g::core {

/// Output of one GAT-e layer: updated node and edge representations.
struct GatEOutput {
  Tensor nodes;  // (n, hidden_dim)
  Tensor edges;  // (n*n, hidden_dim)
};

/// One request's slice of a batched fast forward: the layer inputs plus
/// the index of the EncodePlan page set that holds its scratch and
/// output pages.
struct GatEFastItem {
  const Matrix* nodes = nullptr;             // (n, d)
  const Matrix* edges = nullptr;             // (n*n, d)
  const std::vector<bool>* adjacency = nullptr;
  int page = 0;                              // plan page owned by this item
};

/// The paper's GAT-e module (Eq. 20-26): an edge-aware graph attention
/// layer that (a) mixes edge embeddings into the attention coefficients
/// via the a_e term and (b) updates edge representations from the incident
/// nodes (Eq. 23). Multi-head: hidden layers concatenate P heads of width
/// hidden/P (Eq. 24-25); a layer constructed with `is_last == true`
/// averages P full-width heads and delays the ReLU (Eq. 26).
class GatELayer : public nn::Module {
 public:
  GatELayer(const ModelConfig& config, bool is_last, Rng* rng);

  /// `adjacency` is the n*n Eq. 15 connectivity (with self-loops); the
  /// attention softmax for node i runs over {j : adj[i*n+j]}. This is
  /// the autograd path (training, and the fast path's parity reference);
  /// it increments encode.legacy_layers.
  GatEOutput Forward(const Tensor& nodes, const Tensor& edges,
                     const std::vector<bool>& adjacency) const;

  /// No-grad fast path: writes Forward(...)'s out.nodes into the first n
  /// rows of plan->node_out and out.edges into the first n*n rows of
  /// plan->edge_out — bit for bit — through fused raw kernels, with no
  /// autograd nodes and no (n^2, d) per-head temporaries (the Eq. 23
  /// node terms are hoisted to two (n, dh) products, and attention rows
  /// aggregate straight into the packed multi-head output). Requires
  /// GradMode disabled; increments encode.fast_layers.
  void ForwardFast(const Matrix& nodes, const Matrix& edges,
                   const std::vector<bool>& adjacency,
                   EncodePlan* plan) const;

  /// Cross-request batched fast path: ForwardFast for every item of a
  /// micro-batch through one shared plan page set, in head-lockstep —
  /// the per-head weight streams (W1..W5, a_v, a_e) are traversed once
  /// per batch (MatMulManyInto) instead of once per request, and each
  /// item's arithmetic is untouched, so item i's output pages hold
  /// exactly the bits ForwardFast(item i) would have produced.
  /// ForwardFast is the single-item special case of this entry point.
  /// Requires GradMode disabled and distinct pages < plan->batch_capacity.
  void ForwardFastBatch(const std::vector<GatEFastItem>& items,
                        EncodePlan* plan) const;

 private:
  struct Head {
    Tensor w1;      // (d, dh) attention transform (Eq. 20)
    Tensor av_src;  // (dh, 1) first half of a_v
    Tensor av_dst;  // (dh, 1) second half of a_v
    Tensor ae;      // (d, 1) edge attention vector
    Tensor w2;      // (d, dh) message transform (Eq. 22)
    Tensor w3;      // (d, dh) edge update (Eq. 23)
    Tensor w4;      // (d, dh)
    Tensor w5;      // (d, dh)
  };

  int hidden_dim_;
  int num_heads_;
  int head_dim_;
  bool is_last_;
  float leaky_slope_;
  std::vector<Head> heads_;
};

}  // namespace m2g::core

#endif  // M2G_CORE_GAT_E_H_
