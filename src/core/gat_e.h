#ifndef M2G_CORE_GAT_E_H_
#define M2G_CORE_GAT_E_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/encode_plan.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace m2g::core {

/// Output of one GAT-e layer: updated node and edge representations.
struct GatEOutput {
  Tensor nodes;  // (n, hidden_dim)
  Tensor edges;  // (n*n, hidden_dim)
};

/// One request's slice of a batched fast forward: the layer inputs plus
/// the index of the EncodePlan page set that holds its scratch and
/// output pages.
struct GatEFastItem {
  const Matrix* nodes = nullptr;             // (n, d)
  const Matrix* edges = nullptr;             // (n*n, d)
  const std::vector<bool>* adjacency = nullptr;
  int page = 0;                              // plan page owned by this item
};

/// Destination buffers for the per-head intermediates a warming encode
/// donates to an encode-session cache (core/incremental_encode): the
/// Eq. 23 z*W3 product and the Eq. 20 s_edge column, per head, stored in
/// row blocks of `block` entries so pair (i, j) lands at row i*block + j
/// regardless of n. Capturing is a pure copy of values ForwardFastBatch
/// computes anyway — the forward's arithmetic and outputs are untouched.
struct GatECapture {
  int block = 0;               // pair-row stride, >= n
  std::vector<float*> ew3;     // per head: rows of head_dim floats
  std::vector<float*> se;      // per head: rows of 1 float
};

/// One level's slice of an incremental re-encode step
/// (LevelEncoder::EncodeDelta): the layer's input/output node and edge
/// representations live in an encode-session cache (padded pair stride
/// `block`), and the dirty flags say which of them changed bitwise since
/// the cached forward. ForwardFastDelta recomputes exactly the rows whose
/// inputs (or softmax masks) changed and reuses every other cached value
/// — reuse is bitwise-exact because every kernel involved is
/// deterministic and row-local (see incremental_encode.cc).
struct GatEDeltaItem {
  int n = 0;
  const std::vector<bool>* adjacency = nullptr;  // current graph's mask
  const float* h_in = nullptr;   // (n, d) rows of the layer-input nodes
  const float* z_in = nullptr;   // pair rows at stride `block`
  float* h_out = nullptr;        // cached next-layer nodes, updated in place
  float* z_out = nullptr;        // cached next-layer edges, updated in place
  int block = 0;                 // pair-row stride of z/ew3/se buffers
  std::vector<float*> ew3;       // per head: cached z_l * W3 rows, updated
  std::vector<float*> se;        // per head: cached s_edge rows, updated
  const unsigned char* node_dirty = nullptr;   // n: h_in row changed
  const unsigned char* pair_dirty = nullptr;   // n*n dense: z_in pair changed
  const unsigned char* row_changed = nullptr;  // n: softmax mask membership changed
  const unsigned char* fresh = nullptr;        // n: node has no cached history
  unsigned char* out_node_dirty = nullptr;     // n: h_out row changed
  unsigned char* out_pair_dirty = nullptr;     // n*n dense: z_out pair changed
};

/// The paper's GAT-e module (Eq. 20-26): an edge-aware graph attention
/// layer that (a) mixes edge embeddings into the attention coefficients
/// via the a_e term and (b) updates edge representations from the incident
/// nodes (Eq. 23). Multi-head: hidden layers concatenate P heads of width
/// hidden/P (Eq. 24-25); a layer constructed with `is_last == true`
/// averages P full-width heads and delays the ReLU (Eq. 26).
class GatELayer : public nn::Module {
 public:
  GatELayer(const ModelConfig& config, bool is_last, Rng* rng);

  /// `adjacency` is the n*n Eq. 15 connectivity (with self-loops); the
  /// attention softmax for node i runs over {j : adj[i*n+j]}. This is
  /// the autograd path (training, and the fast path's parity reference);
  /// it increments encode.legacy_layers.
  GatEOutput Forward(const Tensor& nodes, const Tensor& edges,
                     const std::vector<bool>& adjacency) const;

  /// No-grad fast path: writes Forward(...)'s out.nodes into the first n
  /// rows of plan->node_out and out.edges into the first n*n rows of
  /// plan->edge_out — bit for bit — through fused raw kernels, with no
  /// autograd nodes and no (n^2, d) per-head temporaries (the Eq. 23
  /// node terms are hoisted to two (n, dh) products, and attention rows
  /// aggregate straight into the packed multi-head output). Requires
  /// GradMode disabled; increments encode.fast_layers.
  void ForwardFast(const Matrix& nodes, const Matrix& edges,
                   const std::vector<bool>& adjacency,
                   EncodePlan* plan) const;

  /// Cross-request batched fast path: ForwardFast for every item of a
  /// micro-batch through one shared plan page set, in head-lockstep —
  /// the per-head weight streams (W1..W5, a_v, a_e) are traversed once
  /// per batch (MatMulManyInto) instead of once per request, and each
  /// item's arithmetic is untouched, so item i's output pages hold
  /// exactly the bits ForwardFast(item i) would have produced.
  /// ForwardFast is the single-item special case of this entry point.
  /// Requires GradMode disabled and distinct pages < plan->batch_capacity.
  ///
  /// `captures`, when given, holds one (possibly null) GatECapture per
  /// item whose buffers receive the per-head z*W3 and s_edge
  /// intermediates — the warm-up donation for incremental re-encode.
  /// Passing it changes no output bit.
  void ForwardFastBatch(const std::vector<GatEFastItem>& items,
                        EncodePlan* plan,
                        const std::vector<GatECapture*>* captures =
                            nullptr) const;

  /// Incremental re-encode of one layer: recomputes attention rows whose
  /// mask or inputs changed and edge pairs with a changed endpoint or
  /// edge representation, reusing every other cached value bit for bit;
  /// writes the surviving layer outputs into item->h_out/z_out in place
  /// and reports which of them actually changed (out_*_dirty) so the
  /// next layer's delta stays minimal. Bitwise-identical to running
  /// ForwardFast on the full current inputs (incremental_encode_test).
  /// Requires GradMode disabled.
  void ForwardFastDelta(GatEDeltaItem* item, EncodePlan* plan) const;

  int num_heads() const { return num_heads_; }
  /// Output width of one head: hidden/P on hidden layers, hidden on the
  /// last (Eq. 24 vs 26).
  int head_dim() const { return head_dim_; }

 private:
  struct Head {
    Tensor w1;      // (d, dh) attention transform (Eq. 20)
    Tensor av_src;  // (dh, 1) first half of a_v
    Tensor av_dst;  // (dh, 1) second half of a_v
    Tensor ae;      // (d, 1) edge attention vector
    Tensor w2;      // (d, dh) message transform (Eq. 22)
    Tensor w3;      // (d, dh) edge update (Eq. 23)
    Tensor w4;      // (d, dh)
    Tensor w5;      // (d, dh)
  };

  int hidden_dim_;
  int num_heads_;
  int head_dim_;
  bool is_last_;
  float leaky_slope_;
  std::vector<Head> heads_;
};

}  // namespace m2g::core

#endif  // M2G_CORE_GAT_E_H_
