#ifndef M2G_SERVE_ETA_SERVICE_H_
#define M2G_SERVE_ETA_SERVICE_H_

#include "serve/rtp_service.h"

namespace m2g::serve {

/// §VI-C "Minute-level ETA Service": user-facing arrival estimates,
/// replacing the old 2-hour window, plus the pre-arrival push that lets
/// customers get ready (package pick-up is face-to-face).
///
/// Thread-safe: estimates go through RtpService::Handle (no-grad,
/// concurrent) and the only mutable service state is the atomic request
/// counter.
class EtaService {
 public:
  struct Config {
    /// Push a notification when the predicted arrival is within this
    /// many minutes.
    double notify_within_minutes = 10.0;
  };

  EtaService(const RtpService* rtp, const Config& config)
      : rtp_(rtp), config_(config) {}
  explicit EtaService(const RtpService* rtp)
      : EtaService(rtp, Config{}) {}

  struct OrderEta {
    int order_id = 0;
    double eta_minutes = 0;   // minutes from the request time
    int stops_before = 0;     // how many pick-ups precede this one
    bool notify_user = false; // pre-arrival push fired
  };

  /// Minute-level ETA for every pending order of the request.
  std::vector<OrderEta> Estimate(const RtpRequest& request) const;

  /// ETA for a single order id (NotFound if the order is not pending).
  Result<OrderEta> EstimateOrder(const RtpRequest& request,
                                 int order_id) const;

  /// Number of Estimate calls served (monitoring counter; EstimateOrder
  /// counts once through its inner Estimate).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  const RtpService* rtp_;
  Config config_;
  mutable std::atomic<int64_t> requests_served_{0};
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_ETA_SERVICE_H_
