#ifndef M2G_SERVE_MODEL_REGISTRY_H_
#define M2G_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/model.h"

namespace m2g::serve {

/// One immutable published model: the weights plus the version that
/// produced them. Snapshots are handed out by shared_ptr, so a snapshot
/// read by an in-flight batch stays alive — weights readable, version tag
/// stable — until the last batch that started on it finishes, no matter
/// how many swaps happen meanwhile.
struct ModelSnapshot {
  std::shared_ptr<const core::M2g4Rtp> model;
  int64_t version = 0;
};

/// Double-buffered model registry: the serving side of weights hot-swap.
/// Readers (`Current()`) do one lock-free atomic shared_ptr load per
/// micro-batch, so every request of a batch is served — and its response
/// version-tagged — by the same weights. Writers (`Publish*`) build the
/// replacement off the serving threads, then swap the buffer pointer in
/// one atomic store; the displaced snapshot drains by refcount as its
/// last in-flight batches retire. No serving thread ever blocks on a
/// swap, and no request is ever dropped or served by a half-loaded model.
///
/// Observability: `model.version` gauge tracks the live version;
/// `serve.swaps` counts completed publishes.
class ModelRegistry {
 public:
  /// Seeds the registry; the initial model is `initial_version`
  /// (default 1; version 0 is reserved for "no registry").
  explicit ModelRegistry(std::shared_ptr<const core::M2g4Rtp> initial,
                         int64_t initial_version = 1);

  /// The current snapshot (lock-free; never null).
  std::shared_ptr<const ModelSnapshot> Current() const;

  /// Publishes `model` as the new current snapshot and returns its
  /// version (previous + 1). Publishers are serialized with each other;
  /// readers never block.
  int64_t Publish(std::shared_ptr<const core::M2g4Rtp> model);

  /// Off-thread load-and-publish: constructs a model from `config`,
  /// loads the weights file at `path`, and publishes on success. On load
  /// failure the registry is unchanged and the error is returned — a bad
  /// weights file can never become the serving model.
  Result<int64_t> PublishFromFile(const core::ModelConfig& config,
                                  const std::string& path);

  int64_t version() const { return Current()->version; }
  uint64_t swap_count() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> snapshot_;
  std::mutex publish_mu_;
  std::atomic<uint64_t> swaps_{0};
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_MODEL_REGISTRY_H_
