#ifndef M2G_SERVE_FEATURE_EXTRACTOR_H_
#define M2G_SERVE_FEATURE_EXTRACTOR_H_

#include <vector>

#include "synth/dataset.h"

namespace m2g::serve {

/// A live RTP request, as the Figure 7 Feature Extraction Layer receives
/// it: the courier's identity and position, the wall clock, the context,
/// and the raw unvisited orders. No labels — this is the online path.
struct RtpRequest {
  synth::CourierProfile courier;
  geo::LatLng courier_pos;
  double query_time_min = 0;
  int weather = 0;
  int weekday = 0;
  std::vector<synth::Order> pending;
};

/// Figure 7 "Feature Extraction Layer": resolves the request into the
/// model-facing Sample (node ordering, AOI node set, distances, AOI
/// types). The returned sample has empty labels.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(const synth::World* world) : world_(world) {}

  synth::Sample BuildSample(const RtpRequest& request) const;

  /// In-place variant for the serving hot path: builds straight into
  /// `*out` (clearing any previous contents), so the sample's vectors are
  /// constructed in their final home — the response or a batch slot —
  /// and never copied. `out` must not alias `request`.
  void BuildSample(const RtpRequest& request, synth::Sample* out) const;

 private:
  const synth::World* world_;
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_FEATURE_EXTRACTOR_H_
