#ifndef M2G_SERVE_BATCH_SCHEDULER_H_
#define M2G_SERVE_BATCH_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/model.h"
#include "obs/trace_context.h"
#include "serve/model_registry.h"
#include "synth/dataset.h"

namespace m2g::serve {

/// Tuning knobs for the request batcher. The defaults suit a handful of
/// concurrent submitters: a full batch dispatches immediately, a lone
/// request waits at most `max_linger_us` for company.
struct BatchConfig {
  /// Largest micro-batch handed to M2g4Rtp::PredictBatch (also its plan
  /// capacity hint, so pooled plan pages keep one size class).
  int max_batch_size = 8;
  /// How long an under-full batch lingers for more arrivals before
  /// dispatching anyway. Bounds added latency under light load.
  int max_linger_us = 200;
  /// Submission-queue bound. At the bound, Submit sheds to an inline
  /// single-request execution (serve.batch.sheds) instead of queueing —
  /// overload degrades to the unbatched path, it never deadlocks.
  int max_queue_depth = 256;
};

/// One served request's outputs, handed back to the submitting thread.
struct BatchResult {
  core::RtpPrediction prediction;
  /// The submitter's sample, moved through the batch and back (callers
  /// need the node ordering; it is never copied along the way).
  synth::Sample sample;
  /// Version of the ModelSnapshot that produced `prediction` (0 when the
  /// scheduler runs on a fixed model with no registry).
  int64_t model_version = 0;
  /// Size of the micro-batch this request was served in (1 on the shed
  /// path).
  int batch_size = 1;
  /// Time this request waited in the queue from Submit to batch dispatch
  /// (0 on the shed path). Distinct from the leader's linger: a follower
  /// arriving mid-linger waits less than the full window, one parked
  /// behind a full batch waits longer.
  double queue_wait_ms = 0;
  /// True when the queue was full and the request ran inline instead.
  bool shed = false;
};

/// Coalesces concurrent Submit() calls into micro-batches using the
/// leader/follower protocol: every submitter enqueues its slot; the
/// first submitter that finds no active leader becomes the leader,
/// lingers briefly for stragglers, pops up to max_batch_size slots FIFO,
/// and drives M2g4Rtp::PredictBatch for everyone — same-shaped requests
/// share one group so each group's plan page set is traversed once. The
/// remaining submitters sleep until their slot is marked done. No
/// dedicated worker thread exists: an idle service costs nothing, and a
/// single uncontended Submit degenerates to one queue push + one pop +
/// an unbatched predict on the calling thread.
///
/// Batched responses are bitwise-identical to sequential
/// Predict() — PredictBatch guarantees it per sample (serve_test).
///
/// Reads the model through a ModelRegistry when one is given — one
/// snapshot read per batch, so a hot swap lands between batches and every
/// request of a batch is tagged with the version that actually served it.
class BatchScheduler {
 public:
  /// Exactly one of `registry` / `fallback_model` may be null. Both must
  /// outlive the scheduler.
  BatchScheduler(const ModelRegistry* registry,
                 const core::M2g4Rtp* fallback_model,
                 const BatchConfig& config);

  /// Blocks until the sample's prediction is ready (computed either by
  /// this thread as batch leader, or by a concurrent submitter's batch).
  BatchResult Submit(synth::Sample sample);

  /// Submissions that bypassed the queue because it was full.
  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }

 private:
  /// One submitter's parking spot, stack-allocated in Submit. The leader
  /// may touch a foreign slot only between popping it (`taken`) and
  /// marking it `done` under the lock — after that the submitter is free
  /// to move the result out and destroy the slot.
  struct Slot {
    synth::Sample sample;
    BatchResult result;
    bool taken = false;
    bool done = false;
    /// The submitter's trace context, captured at Submit so the leader
    /// can attribute queue wait, shared batch stages, and this member's
    /// decode back to the owning request's span tree.
    obs::TraceContext ctx;
    /// Submit time (ms since process start) for the queue-wait span.
    double submit_ms = 0;
  };

  /// Runs batches (lock held on entry/exit) until `mine` is done, then
  /// abdicates. `mine` is always in the first popped batch unless more
  /// than a full batch of earlier arrivals is queued ahead of it.
  void LeadLoop(std::unique_lock<std::mutex>& lock, Slot* mine);

  /// Executes one popped batch. Called WITHOUT the lock: the only slots
  /// it touches are `taken` ones no other thread may access.
  void ExecuteBatch(const std::vector<Slot*>& batch);

  /// Queue-full shed path: unbatched predict on the calling thread.
  BatchResult ExecuteSingle(synth::Sample sample) const;

  const ModelRegistry* registry_;
  const core::M2g4Rtp* fallback_model_;
  const BatchConfig config_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Slot*> queue_;
  bool leader_active_ = false;
  bool leader_lingering_ = false;
  std::atomic<uint64_t> sheds_{0};
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_BATCH_SCHEDULER_H_
