#include "serve/rtp_service.h"

#include "tensor/grad_mode.h"

namespace m2g::serve {

RtpService::Response RtpService::Handle(const RtpRequest& request) const {
  // Serving never backpropagates: skip all graph construction.
  NoGradGuard no_grad;
  Response response;
  response.sample = extractor_.BuildSample(request);
  response.prediction = model_->Predict(response.sample);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

}  // namespace m2g::serve
