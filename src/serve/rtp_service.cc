#include "serve/rtp_service.h"

#include "tensor/grad_mode.h"

namespace m2g::serve {

RtpService::Response RtpService::Handle(const RtpRequest& request) const {
  // Serving never backpropagates: skip all graph construction. The
  // request-scoped arena recycles every forward-pass buffer through the
  // thread-local pool — once a serving thread is warm, the steady-state
  // hot path performs zero heap allocations for tensor storage.
  NoGradGuard no_grad;
  ArenaGuard arena;
  Response response;
  response.sample = extractor_.BuildSample(request);
  response.prediction = model_->Predict(response.sample);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

TensorPool::ArenaCounters RtpService::pool_counters() {
  return TensorPool::AggregatedArenaCounters();
}

}  // namespace m2g::serve
