#include "serve/rtp_service.h"

#include <utility>

#include "obs/trace.h"
#include "tensor/grad_mode.h"
#include "tensor/simd.h"

namespace m2g::serve {

RtpService::RtpService(const synth::World* world,
                       const core::M2g4Rtp* model,
                       const ServingConfig& config)
    : extractor_(world), model_(model) {
  if (config.batching_enabled) {
    scheduler_ =
        std::make_unique<BatchScheduler>(nullptr, model, config.batch);
  }
  if (config.encode_sessions.enabled) {
    sessions_ = std::make_unique<EncodeSessionStore>(
        config.encode_sessions.byte_budget);
  }
}

RtpService::RtpService(const synth::World* world,
                       const ModelRegistry* registry,
                       const ServingConfig& config)
    : extractor_(world), registry_(registry) {
  M2G_CHECK(registry != nullptr);
  if (config.batching_enabled) {
    scheduler_ =
        std::make_unique<BatchScheduler>(registry, nullptr, config.batch);
  }
  if (config.encode_sessions.enabled) {
    sessions_ = std::make_unique<EncodeSessionStore>(
        config.encode_sessions.byte_budget);
  }
}

RtpService::Response RtpService::Handle(const RtpRequest& request) const {
  static obs::Counter& requests_counter =
      obs::MetricsRegistry::Global().counter("serve.rtp.requests");
  static obs::Histogram& request_hist =
      obs::StageHistogram("serve.request.ms");
  static obs::Histogram& extract_hist =
      obs::StageHistogram("serve.stage.feature_extract.ms");

  // Serving never backpropagates: skip all graph construction.
  NoGradGuard no_grad;
  // The request trace owns this request's span tree and wide event; the
  // serve.request.ms span right below becomes its root. Inert when a
  // trace is already active on this thread (a nested Handle attributes
  // to the outer request) or when obs is disabled.
  obs::RequestTrace trace("rtp");
  const TensorPool::ArenaCounters pool_before =
      trace.active() ? pool_counters() : TensorPool::ArenaCounters{};
  obs::TraceSpan request_span("serve.request.ms", &request_hist);
  Response response;
  obs::WideEvent& event = trace.event();
  event.batched = sessions_ == nullptr && scheduler_ != nullptr;
  event.simd_tier = simd::TierName(simd::ActiveTier());
  if (sessions_ != nullptr) {
    // Encode-session path: delta-eligible requests bypass the batch
    // encode and run inline against their courier's cached state. The
    // session mutex serializes concurrent Handle() calls for the same
    // courier; distinct couriers proceed in parallel.
    ArenaGuard arena;
    {
      obs::TraceSpan span("serve.stage.feature_extract.ms", &extract_hist);
      extractor_.BuildSample(request, &response.sample);
    }
    const core::M2g4Rtp* model = model_;
    std::shared_ptr<const ModelSnapshot> snapshot;
    if (registry_ != nullptr) {
      snapshot = registry_->Current();
      model = snapshot->model.get();
      response.model_version = snapshot->version;
    }
    const int courier_id = request.courier.id;
    std::shared_ptr<EncodeSession> session = sessions_->Acquire(courier_id);
    size_t session_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      if (session->model_version != response.model_version) {
        // Snapshot hot-swap (or first use): cached encodings belong to
        // other weights — never serve them.
        session->state.Reset();
        session->model_version = response.model_version;
      }
      core::IncrementalResult incremental;
      response.prediction =
          model->PredictIncremental(response.sample, &session->state,
                                    &incremental);
      event.delta_encode = incremental.delta;
      session_bytes = session->state.bytes();
    }
    sessions_->Release(courier_id, session_bytes);
  } else if (scheduler_ != nullptr) {
    // Batching path: extract here, predict wherever the scheduler
    // coalesces us. The sample rides through the batch by move and comes
    // back with the prediction and the serving snapshot's version.
    synth::Sample sample;
    {
      obs::TraceSpan span("serve.stage.feature_extract.ms", &extract_hist);
      extractor_.BuildSample(request, &sample);
    }
    BatchResult result = scheduler_->Submit(std::move(sample));
    response.sample = std::move(result.sample);
    response.prediction = std::move(result.prediction);
    response.model_version = result.model_version;
    event.batch_size = result.batch_size;
    event.shed = result.shed;
  } else {
    // Legacy path. The request-scoped arena recycles every forward-pass
    // buffer through the thread-local pool — once a serving thread is
    // warm, the steady-state hot path performs zero heap allocations for
    // tensor storage.
    ArenaGuard arena;
    {
      obs::TraceSpan span("serve.stage.feature_extract.ms", &extract_hist);
      extractor_.BuildSample(request, &response.sample);
    }
    const core::M2g4Rtp* model = model_;
    std::shared_ptr<const ModelSnapshot> snapshot;
    if (registry_ != nullptr) {
      snapshot = registry_->Current();
      model = snapshot->model.get();
      response.model_version = snapshot->version;
    }
    response.prediction = model->Predict(response.sample);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  requests_counter.Increment();
  if (trace.active()) {
    event.model_version = response.model_version;
    event.num_locations = response.sample.num_locations();
    event.num_aois = response.sample.num_aois();
    event.route_length =
        static_cast<int>(response.prediction.location_route.size());
    event.beam_width = beam_width();
    const TensorPool::ArenaCounters pool_after = pool_counters();
    event.pool_hit_delta = pool_after.hits - pool_before.hits;
    event.pool_miss_delta = pool_after.misses - pool_before.misses;
  }
  return response;
}

int RtpService::beam_width() const {
  if (model_ != nullptr) return model_->config().beam_width;
  if (registry_ != nullptr) {
    // Cheap atomic snapshot read; under a mid-request hot swap this may
    // name the new snapshot's width, which is fine for a log field.
    const std::shared_ptr<const ModelSnapshot> snapshot = registry_->Current();
    if (snapshot != nullptr && snapshot->model != nullptr) {
      return snapshot->model->config().beam_width;
    }
  }
  return 0;
}

TensorPool::ArenaCounters RtpService::pool_counters() {
  return TensorPool::AggregatedArenaCounters();
}

}  // namespace m2g::serve
