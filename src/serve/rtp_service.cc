#include "serve/rtp_service.h"

namespace m2g::serve {

RtpService::Response RtpService::Handle(const RtpRequest& request) const {
  Response response;
  response.sample = extractor_.BuildSample(request);
  response.prediction = model_->Predict(response.sample);
  ++requests_served_;
  return response;
}

}  // namespace m2g::serve
