#include "serve/rtp_service.h"

#include "obs/trace.h"
#include "tensor/grad_mode.h"

namespace m2g::serve {

RtpService::Response RtpService::Handle(const RtpRequest& request) const {
  static obs::Counter& requests_counter =
      obs::MetricsRegistry::Global().counter("serve.rtp.requests");
  static obs::Histogram& request_hist =
      obs::StageHistogram("serve.request.ms");
  static obs::Histogram& extract_hist =
      obs::StageHistogram("serve.stage.feature_extract.ms");

  // Serving never backpropagates: skip all graph construction. The
  // request-scoped arena recycles every forward-pass buffer through the
  // thread-local pool — once a serving thread is warm, the steady-state
  // hot path performs zero heap allocations for tensor storage.
  NoGradGuard no_grad;
  ArenaGuard arena;
  obs::TraceSpan request_span("serve.request.ms", &request_hist);
  Response response;
  {
    obs::TraceSpan span("serve.stage.feature_extract.ms", &extract_hist);
    response.sample = extractor_.BuildSample(request);
  }
  response.prediction = model_->Predict(response.sample);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  requests_counter.Increment();
  return response;
}

TensorPool::ArenaCounters RtpService::pool_counters() {
  return TensorPool::AggregatedArenaCounters();
}

}  // namespace m2g::serve
