#ifndef M2G_SERVE_GRAPH_BUILDER_H_
#define M2G_SERVE_GRAPH_BUILDER_H_

#include "graph/multi_level_graph.h"

namespace m2g::serve {

/// Figure 7 "Graph Builder": the distance tool plus multi-level graph
/// construction over the extracted features. Thin facade over the graph
/// module so the online and offline paths provably share one code path.
class GraphBuilder {
 public:
  explicit GraphBuilder(const graph::GraphConfig& config)
      : config_(config) {}
  GraphBuilder() : GraphBuilder(graph::GraphConfig{}) {}

  /// Distance tool used throughout the online pipeline (meters).
  double Distance(const geo::LatLng& a, const geo::LatLng& b) const;

  graph::MultiLevelGraph Build(const synth::Sample& sample) const;

  const graph::GraphConfig& config() const { return config_; }

 private:
  graph::GraphConfig config_;
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_GRAPH_BUILDER_H_
