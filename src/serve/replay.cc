#include "serve/replay.h"

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace m2g::serve {

RtpRequest RequestFromSample(const synth::Sample& sample) {
  RtpRequest req;
  req.courier = sample.courier;
  req.courier_pos = sample.courier_pos;
  req.query_time_min = sample.query_time_min;
  req.weather = sample.weather;
  req.weekday = sample.weekday;
  req.pending.reserve(sample.locations.size());
  for (const synth::LocationTask& task : sample.locations) {
    synth::Order o;
    o.id = task.order_id;
    o.pos = task.pos;
    o.aoi_id = task.aoi_id;
    o.accept_time_min = task.accept_time_min;
    o.deadline_min = task.deadline_min;
    req.pending.push_back(o);
  }
  return req;
}

std::vector<RtpRequest> ReplayTrip(const synth::TripRecord& trip,
                                   const synth::CourierProfile& courier) {
  std::vector<RtpRequest> requests;
  const int total = static_cast<int>(trip.served.size());
  for (int prefix = 0; prefix < total; ++prefix) {
    RtpRequest req;
    req.courier = courier;
    req.weather = trip.weather;
    req.weekday = trip.weekday;
    if (prefix == 0) {
      req.courier_pos = trip.start_pos;
      req.query_time_min = trip.start_time_min;
    } else {
      req.courier_pos = trip.served[prefix - 1].order.pos;
      req.query_time_min = trip.served[prefix - 1].departure_time_min;
    }
    for (int j = prefix; j < total; ++j) {
      req.pending.push_back(trip.served[j].order);
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

ConcurrentReplayResult ReplayConcurrently(
    const RtpService& service, const std::vector<RtpRequest>& requests,
    int threads) {
  ConcurrentReplayResult result;
  result.responses.resize(requests.size());
  ThreadPool pool(ResolveThreads(threads));
  Stopwatch watch;
  pool.ParallelFor(static_cast<int64_t>(requests.size()), [&](int64_t i) {
    result.responses[i] = service.Handle(requests[i]);
  });
  result.wall_seconds = watch.ElapsedSeconds();
  result.requests_per_second =
      result.wall_seconds > 0
          ? static_cast<double>(requests.size()) / result.wall_seconds
          : 0;
  return result;
}

int NodeIndexOfOrder(const synth::Sample& sample, int order_id) {
  for (int i = 0; i < sample.num_locations(); ++i) {
    if (sample.locations[i].order_id == order_id) return i;
  }
  return -1;
}

}  // namespace m2g::serve
