#include "serve/feature_extractor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace m2g::serve {

synth::Sample FeatureExtractor::BuildSample(const RtpRequest& request) const {
  synth::Sample s;
  BuildSample(request, &s);
  return s;
}

void FeatureExtractor::BuildSample(const RtpRequest& request,
                                   synth::Sample* out) const {
  M2G_CHECK(!request.pending.empty());
  synth::Sample& s = *out;
  // Reset by clearing each vector rather than assigning a fresh Sample,
  // so a reused `out` (a warm batch slot) keeps its vector capacity.
  s.day = 0;
  s.locations.clear();
  s.aoi_node_ids.clear();
  s.loc_to_aoi.clear();
  s.route_label.clear();
  s.time_label_min.clear();
  s.aoi_route_label.clear();
  s.aoi_time_label_min.clear();
  s.courier_id = request.courier.id;
  s.courier = request.courier;
  s.courier_pos = request.courier_pos;
  s.query_time_min = request.query_time_min;
  s.weather = request.weather;
  s.weekday = request.weekday;

  // Node order: ascending order id, exactly like the offline snapshots.
  std::vector<const synth::Order*> by_id;
  by_id.reserve(request.pending.size());
  for (const synth::Order& o : request.pending) by_id.push_back(&o);
  std::sort(by_id.begin(), by_id.end(),
            [](const synth::Order* a, const synth::Order* b) {
              return a->id < b->id;
            });

  std::set<int> distinct_aois;
  for (const synth::Order* o : by_id) distinct_aois.insert(o->aoi_id);
  s.aoi_node_ids.assign(distinct_aois.begin(), distinct_aois.end());
  std::map<int, int> aoi_to_node;
  for (size_t k = 0; k < s.aoi_node_ids.size(); ++k) {
    aoi_to_node[s.aoi_node_ids[k]] = static_cast<int>(k);
  }

  for (const synth::Order* o : by_id) {
    synth::LocationTask task;
    task.order_id = o->id;
    task.pos = o->pos;
    task.aoi_id = o->aoi_id;
    task.aoi_type = static_cast<int>(world_->aoi(o->aoi_id).type);
    task.accept_time_min = o->accept_time_min;
    task.deadline_min = o->deadline_min;
    task.dist_from_courier_m =
        geo::ApproxMeters(request.courier_pos, o->pos);
    s.locations.push_back(task);
    s.loc_to_aoi.push_back(aoi_to_node[o->aoi_id]);
  }
}

}  // namespace m2g::serve
