#ifndef M2G_SERVE_ORDER_SORTING_SERVICE_H_
#define M2G_SERVE_ORDER_SORTING_SERVICE_H_

#include "serve/rtp_service.h"

namespace m2g::serve {

/// §VI-B "Intelligent Order Sorting Service": presents the courier's
/// unpicked orders ranked by the predicted future route instead of the
/// old time-/distance-greedy listings.
class OrderSortingService {
 public:
  explicit OrderSortingService(const RtpService* rtp) : rtp_(rtp) {}

  struct SortedOrder {
    int order_id = 0;
    int rank = 0;             // 0 = next pick-up
    double eta_minutes = 0;   // predicted arrival gap
  };

  /// Orders in predicted visit sequence.
  std::vector<SortedOrder> Sort(const RtpRequest& request) const;

 private:
  const RtpService* rtp_;
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_ORDER_SORTING_SERVICE_H_
