#ifndef M2G_SERVE_RTP_SERVICE_H_
#define M2G_SERVE_RTP_SERVICE_H_

#include <atomic>
#include <memory>

#include "core/model.h"
#include "serve/feature_extractor.h"
#include "serve/graph_builder.h"
#include "tensor/pool.h"

namespace m2g::serve {

/// Figure 7 "M2G4RTP Service": the online inference layer. Owns the
/// pre-trained model and answers RTP requests end-to-end (features ->
/// multi-level graph -> joint route & time prediction).
///
/// Handle() is safe to call from many threads at once: it runs under
/// NoGradGuard (no shared autograd state is touched) and the only mutable
/// service state is the atomic request counter.
class RtpService {
 public:
  /// `model` must outlive the service; it is typically loaded from a
  /// weights file produced by offline training.
  RtpService(const synth::World* world, const core::M2g4Rtp* model)
      : extractor_(world), model_(model) {}

  /// Joint prediction plus the sample the features resolved to (callers
  /// need the node ordering to map route indices back to order ids).
  struct Response {
    synth::Sample sample;
    core::RtpPrediction prediction;
  };

  Response Handle(const RtpRequest& request) const;

  /// Number of requests served (monitoring counter).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Tensor-pool behaviour across all request arenas (process-wide
  /// monitoring counters; steady-state serving should report zero new
  /// misses once every serving thread has warmed its pool).
  static TensorPool::ArenaCounters pool_counters();

 private:
  FeatureExtractor extractor_;
  const core::M2g4Rtp* model_;
  mutable std::atomic<int64_t> requests_served_{0};
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_RTP_SERVICE_H_
