#ifndef M2G_SERVE_RTP_SERVICE_H_
#define M2G_SERVE_RTP_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/model.h"
#include "serve/batch_scheduler.h"
#include "serve/encode_session.h"
#include "serve/feature_extractor.h"
#include "serve/graph_builder.h"
#include "serve/model_registry.h"
#include "tensor/pool.h"

namespace m2g::serve {

/// Per-courier incremental-encode sessions (core/incremental_encode):
/// off by default, like batching — an opt-in serving optimization whose
/// responses are bitwise-identical to the stateless path.
struct EncodeSessionsConfig {
  bool enabled = false;
  /// LRU byte budget across all cached sessions (tensor payloads). The
  /// most recently used session always survives, even over budget.
  size_t byte_budget = 256u << 20;
};

/// Serving-layer switches. Batching defaults off: the legacy
/// one-thread-one-request path stays the default until a deployment
/// opts in, making the batching refactor a pure restructuring under flag.
/// Encode sessions take precedence over batching: a session-routed
/// request is delta-eligible and bypasses the batch encode entirely
/// (micro-batching amortizes full encodes; a delta step is cheaper than
/// a batched slot and must run against its courier's cached state).
struct ServingConfig {
  bool batching_enabled = false;
  BatchConfig batch;
  EncodeSessionsConfig encode_sessions;
};

/// Figure 7 "M2G4RTP Service": the online inference layer. Answers RTP
/// requests end-to-end (features -> multi-level graph -> joint route &
/// time prediction) against either a fixed model or a ModelRegistry
/// whose snapshots hot-swap under load.
///
/// Handle() is safe to call from many threads at once: it runs under
/// NoGradGuard (no shared autograd state is touched), the batch
/// scheduler's queue is internally synchronized, and the only other
/// mutable service state is the atomic request counter.
///
/// With `batching_enabled`, concurrent Handle() calls coalesce into
/// micro-batches (BatchScheduler) whose responses are bitwise-identical
/// to the unbatched path, per request.
class RtpService {
 public:
  /// Fixed-model service, legacy path only. `model` must outlive the
  /// service; it is typically loaded from a weights file produced by
  /// offline training. Responses carry model_version 0.
  RtpService(const synth::World* world, const core::M2g4Rtp* model)
      : RtpService(world, model, ServingConfig()) {}

  /// Fixed-model service with serving switches.
  RtpService(const synth::World* world, const core::M2g4Rtp* model,
             const ServingConfig& config);

  /// Registry-backed service: every request (or micro-batch) reads the
  /// registry's current snapshot, so published models go live between
  /// batches with zero downtime. Responses carry the snapshot's version.
  RtpService(const synth::World* world, const ModelRegistry* registry,
             const ServingConfig& config);

  /// Joint prediction plus the sample the features resolved to (callers
  /// need the node ordering to map route indices back to order ids).
  struct Response {
    synth::Sample sample;
    core::RtpPrediction prediction;
    /// Version of the model snapshot that served this request (0 when
    /// the service runs on a fixed model with no registry).
    int64_t model_version = 0;
  };

  Response Handle(const RtpRequest& request) const;

  /// Number of requests served (monitoring counter).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Submissions the batcher shed to inline execution (0 when batching
  /// is disabled).
  uint64_t batch_sheds() const {
    return scheduler_ != nullptr ? scheduler_->sheds() : 0;
  }

  /// The encode-session store (nullptr when sessions are disabled).
  /// Exposed for monitoring and the serve_test eviction suite.
  const EncodeSessionStore* session_store() const { return sessions_.get(); }

  /// Tensor-pool behaviour across all request arenas (process-wide
  /// monitoring counters; steady-state serving should report zero new
  /// misses once every serving thread has warmed its pool).
  static TensorPool::ArenaCounters pool_counters();

 private:
  /// Serving beam width for the wide event (0 if no model is resolvable).
  int beam_width() const;

  FeatureExtractor extractor_;
  const core::M2g4Rtp* model_ = nullptr;
  const ModelRegistry* registry_ = nullptr;
  std::unique_ptr<BatchScheduler> scheduler_;
  std::unique_ptr<EncodeSessionStore> sessions_;
  mutable std::atomic<int64_t> requests_served_{0};
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_RTP_SERVICE_H_
