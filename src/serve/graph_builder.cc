#include "serve/graph_builder.h"

namespace m2g::serve {

double GraphBuilder::Distance(const geo::LatLng& a,
                              const geo::LatLng& b) const {
  return geo::ApproxMeters(a, b);
}

graph::MultiLevelGraph GraphBuilder::Build(
    const synth::Sample& sample) const {
  return graph::BuildMultiLevelGraph(sample, config_);
}

}  // namespace m2g::serve
