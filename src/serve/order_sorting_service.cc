#include "serve/order_sorting_service.h"

namespace m2g::serve {

std::vector<OrderSortingService::SortedOrder> OrderSortingService::Sort(
    const RtpRequest& request) const {
  RtpService::Response response = rtp_->Handle(request);
  std::vector<SortedOrder> out;
  out.reserve(response.prediction.location_route.size());
  for (size_t rank = 0; rank < response.prediction.location_route.size();
       ++rank) {
    const int node = response.prediction.location_route[rank];
    SortedOrder so;
    so.order_id = response.sample.locations[node].order_id;
    so.rank = static_cast<int>(rank);
    so.eta_minutes = response.prediction.location_times_min[node];
    out.push_back(so);
  }
  return out;
}

}  // namespace m2g::serve
