#include "serve/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace m2g::serve {
namespace {

obs::Histogram& BatchSizeHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().histogram(
      "serve.batch.size", {1, 2, 4, 8, 16, 32, 64});
  return h;
}

obs::Counter& ShedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.batch.sheds");
  return c;
}

obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& h =
      obs::StageHistogram("serve.batch.queue_wait.ms");
  return h;
}

}  // namespace

BatchScheduler::BatchScheduler(const ModelRegistry* registry,
                               const core::M2g4Rtp* fallback_model,
                               const BatchConfig& config)
    : registry_(registry), fallback_model_(fallback_model), config_(config) {
  M2G_CHECK(registry_ != nullptr || fallback_model_ != nullptr);
  M2G_CHECK_GE(config_.max_batch_size, 1);
  M2G_CHECK_GE(config_.max_linger_us, 0);
  M2G_CHECK_GE(config_.max_queue_depth, 1);
}

BatchResult BatchScheduler::Submit(synth::Sample sample) {
  Slot slot;
  slot.sample = std::move(sample);
  // Captured before queueing: the innermost open span here is the
  // request's root span, so everything the leader records under this
  // context (queue wait, shared stages, this member's decode) becomes a
  // direct child of it.
  slot.ctx = obs::CurrentTraceContext();
  slot.submit_ms = obs::UptimeMs();

  std::unique_lock<std::mutex> lock(mu_);
  if (static_cast<int>(queue_.size()) >= config_.max_queue_depth) {
    lock.unlock();
    sheds_.fetch_add(1, std::memory_order_relaxed);
    ShedCounter().Increment();
    BatchResult result = ExecuteSingle(std::move(slot.sample));
    result.shed = true;
    return result;
  }
  queue_.push_back(&slot);
  // Wake the leader only while it lingers: a fuller batch may dispatch
  // early. Waking sleeping followers here would just burn context
  // switches on a busy box.
  if (leader_lingering_) cv_.notify_all();
  while (true) {
    if (slot.done) return std::move(slot.result);
    if (!leader_active_ && !slot.taken) {
      leader_active_ = true;
      LeadLoop(lock, &slot);
      M2G_CHECK(slot.done);
      return std::move(slot.result);
    }
    cv_.wait(lock);
  }
}

void BatchScheduler::LeadLoop(std::unique_lock<std::mutex>& lock,
                              Slot* mine) {
  static obs::Histogram& linger_hist =
      obs::StageHistogram("serve.batch.linger.ms");
  while (!mine->done) {
    {
      // Linger for stragglers; a full queue dispatches immediately.
      obs::TraceSpan span("serve.batch.linger.ms", &linger_hist);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.max_linger_us);
      leader_lingering_ = true;
      while (static_cast<int>(queue_.size()) < config_.max_batch_size &&
             cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
      }
      leader_lingering_ = false;
    }
    std::vector<Slot*> batch;
    const int take = std::min(static_cast<int>(queue_.size()),
                              config_.max_batch_size);
    batch.reserve(take);
    for (int i = 0; i < take; ++i) {
      Slot* s = queue_.front();
      queue_.pop_front();
      s->taken = true;
      batch.push_back(s);
    }
    lock.unlock();
    ExecuteBatch(batch);
    lock.lock();
    for (Slot* s : batch) s->done = true;
    cv_.notify_all();
  }
  // Abdicate; any queued submitter may elect itself leader.
  leader_active_ = false;
  cv_.notify_all();
}

void BatchScheduler::ExecuteBatch(const std::vector<Slot*>& batch) {
  const int batch_size = static_cast<int>(batch.size());
  BatchSizeHistogram().Record(static_cast<double>(batch_size));
  // Dispatch marks the end of every member's queue wait: record it per
  // member (submit -> now), into both the queue-wait histogram and each
  // member's span tree.
  const double dispatch_ms = obs::UptimeMs();
  for (Slot* s : batch) {
    const double wait_ms = dispatch_ms - s->submit_ms;
    s->result.queue_wait_ms = wait_ms;
    s->result.batch_size = batch_size;
    obs::RecordExternalSpan(s->ctx, "serve.batch.queue_wait.ms",
                            s->submit_ms, wait_ms, &QueueWaitHistogram(),
                            batch_size);
  }
  // The leader's thread does the whole batch's tensor work: no-grad,
  // one arena scope, so every forward-pass buffer recycles through this
  // thread's pool.
  NoGradGuard no_grad;
  ArenaGuard arena;

  // One registry read per batch: a concurrent Publish lands between
  // batches, never inside one, and every request of this batch is tagged
  // with the version that actually served it.
  std::shared_ptr<const ModelSnapshot> snapshot;
  const core::M2g4Rtp* model = fallback_model_;
  int64_t version = 0;
  if (registry_ != nullptr) {
    snapshot = registry_->Current();
    model = snapshot->model.get();
    version = snapshot->version;
  }

  // The whole batch runs through one PredictBatch call: mixed request
  // shapes share the plan page set (sized to the batch max; per-sample
  // bits are untouched by oversized scratch, so parity holds — the
  // serve_test parity suite covers mixed-size batches).
  std::vector<const synth::Sample*> samples;
  std::vector<obs::TraceContext> member_traces;
  samples.reserve(batch.size());
  member_traces.reserve(batch.size());
  for (Slot* s : batch) {
    samples.push_back(&s->sample);
    member_traces.push_back(s->ctx);
  }
  std::vector<core::RtpPrediction> preds;
  {
    // The batch trace owns the batch-amortized work: graph build and
    // encode record once under serve.batch.execute.ms, and PredictBatch
    // fans their ids out to each member tree as shared-span references.
    obs::BatchTrace batch_trace(batch_size);
    preds =
        model->PredictBatch(samples, config_.max_batch_size, &member_traces);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i]->result.prediction = std::move(preds[i]);
    batch[i]->result.sample = std::move(batch[i]->sample);
    batch[i]->result.model_version = version;
  }
}

BatchResult BatchScheduler::ExecuteSingle(synth::Sample sample) const {
  NoGradGuard no_grad;
  ArenaGuard arena;
  std::shared_ptr<const ModelSnapshot> snapshot;
  const core::M2g4Rtp* model = fallback_model_;
  BatchResult result;
  if (registry_ != nullptr) {
    snapshot = registry_->Current();
    model = snapshot->model.get();
    result.model_version = snapshot->version;
  }
  result.prediction = model->Predict(sample);
  result.sample = std::move(sample);
  return result;
}

}  // namespace m2g::serve
