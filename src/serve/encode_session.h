#ifndef M2G_SERVE_ENCODE_SESSION_H_
#define M2G_SERVE_ENCODE_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/incremental_encode.h"

namespace m2g::serve {

/// One courier's incremental-encode session: the cached encode state
/// plus the mutex that serializes concurrent Handle() calls for the same
/// courier (delta encoding is inherently sequential — each step advances
/// the cached graph). `model_version` pins the snapshot the state was
/// encoded with: a hot-swap invalidates the session before its next use,
/// so stale encodings can never serve (serve_test pins this).
class EncodeSession {
 public:
  std::mutex mu;
  core::IncrementalState state;
  int64_t model_version = 0;
};

/// LRU store of encode sessions keyed by courier id, bounded by a byte
/// budget over the cached tensor payloads. Sessions are handed out by
/// shared_ptr, so an eviction never invalidates a session another thread
/// is mid-request on — the evicted state simply stops being findable and
/// frees when its last user releases it.
///
/// Thread-safe; the store lock covers only map/LRU bookkeeping, never
/// encode work. Metrics: encode.session_hits / _misses / _evictions.
class EncodeSessionStore {
 public:
  explicit EncodeSessionStore(size_t byte_budget);

  /// Finds or creates the courier's session and marks it most recently
  /// used. Never blocks on encode work.
  std::shared_ptr<EncodeSession> Acquire(int courier_id);

  /// Reports the session's post-request footprint (callers compute
  /// state.bytes() while still holding the session mutex) and evicts
  /// least-recently-used sessions while the total exceeds the budget.
  /// The most recently used session always survives, even over budget.
  void Release(int courier_id, size_t session_bytes);

  size_t sessions() const;
  size_t bytes() const;

 private:
  void EvictOverBudgetLocked();

  struct Entry {
    std::shared_ptr<EncodeSession> session;
    size_t bytes = 0;
    std::list<int>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t budget_ = 0;
  size_t total_bytes_ = 0;
  std::list<int> lru_;  // front = most recently used
  std::unordered_map<int, Entry> entries_;
};

}  // namespace m2g::serve

#endif  // M2G_SERVE_ENCODE_SESSION_H_
