#ifndef M2G_SERVE_REPLAY_H_
#define M2G_SERVE_REPLAY_H_

#include "serve/feature_extractor.h"
#include "serve/rtp_service.h"

namespace m2g::serve {

/// Converts offline samples/trips back into the live requests the
/// Figure 7 pipeline would have received — the replay harness used by the
/// deployment bench, the serving tests and the app demos.

/// Rebuilds the RTP request a Sample was snapshotted from.
RtpRequest RequestFromSample(const synth::Sample& sample);

/// All requests a trip generates if the app re-queries after every
/// pick-up: element 0 is the trip start (all orders pending), element i
/// has the first i orders already served, with the clock and courier
/// position advanced to the realized values.
std::vector<RtpRequest> ReplayTrip(const synth::TripRecord& trip,
                                   const synth::CourierProfile& courier);

/// Maps an order id to its node index in `sample` (-1 if absent).
int NodeIndexOfOrder(const synth::Sample& sample, int order_id);

/// Result of a multi-threaded replay run: responses are indexed exactly
/// like the input requests regardless of which worker served them.
struct ConcurrentReplayResult {
  std::vector<RtpService::Response> responses;
  double wall_seconds = 0;
  double requests_per_second = 0;
};

/// Serves every request through `service` from `threads` concurrent
/// workers (0 = DefaultThreads(); 1 degenerates to a serial replay).
/// Responses land at their request's index, so the output is
/// deterministic and directly comparable to a serial replay.
ConcurrentReplayResult ReplayConcurrently(
    const RtpService& service, const std::vector<RtpRequest>& requests,
    int threads);

}  // namespace m2g::serve

#endif  // M2G_SERVE_REPLAY_H_
