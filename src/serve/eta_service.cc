#include "serve/eta_service.h"

#include "common/string_util.h"
#include "obs/trace.h"

namespace m2g::serve {

std::vector<EtaService::OrderEta> EtaService::Estimate(
    const RtpRequest& request) const {
  static obs::Counter& requests_counter =
      obs::MetricsRegistry::Global().counter("serve.eta.requests");
  static obs::Histogram& estimate_hist =
      obs::StageHistogram("serve.eta.estimate.ms");

  // Request-scoped arena (nests with the one inside Handle): the
  // response's sample/prediction buffers are released back to the pool
  // before the next estimate on this thread.
  ArenaGuard arena;
  obs::TraceSpan span("serve.eta.estimate.ms", &estimate_hist);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  requests_counter.Increment();
  RtpService::Response response = rtp_->Handle(request);
  const auto& route = response.prediction.location_route;
  std::vector<int> stops_before(route.size(), 0);
  for (size_t rank = 0; rank < route.size(); ++rank) {
    stops_before[route[rank]] = static_cast<int>(rank);
  }
  std::vector<OrderEta> out;
  out.reserve(route.size());
  for (size_t node = 0; node < route.size(); ++node) {
    OrderEta eta;
    eta.order_id = response.sample.locations[node].order_id;
    eta.eta_minutes = response.prediction.location_times_min[node];
    eta.stops_before = stops_before[node];
    eta.notify_user = eta.eta_minutes <= config_.notify_within_minutes;
    out.push_back(eta);
  }
  return out;
}

Result<EtaService::OrderEta> EtaService::EstimateOrder(
    const RtpRequest& request, int order_id) const {
  for (const OrderEta& eta : Estimate(request)) {
    if (eta.order_id == order_id) return eta;
  }
  return Status::NotFound(
      StrFormat("order %d is not pending in this request", order_id));
}

}  // namespace m2g::serve
