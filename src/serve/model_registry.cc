#include "serve/model_registry.h"

#include <utility>

#include "obs/metrics.h"

namespace m2g::serve {
namespace {

obs::Gauge& VersionGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().gauge("model.version");
  return g;
}

obs::Counter& SwapCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.swaps");
  return c;
}

obs::Counter& PublishFailureCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "serve.registry.publish_failures");
  return c;
}

}  // namespace

ModelRegistry::ModelRegistry(std::shared_ptr<const core::M2g4Rtp> initial,
                             int64_t initial_version) {
  M2G_CHECK(initial != nullptr);
  auto snapshot = std::make_shared<const ModelSnapshot>(
      ModelSnapshot{std::move(initial), initial_version});
  snapshot_.store(std::move(snapshot), std::memory_order_release);
  VersionGauge().Set(static_cast<double>(initial_version));
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Current() const {
  return snapshot_.load(std::memory_order_acquire);
}

int64_t ModelRegistry::Publish(std::shared_ptr<const core::M2g4Rtp> model) {
  M2G_CHECK(model != nullptr);
  std::lock_guard<std::mutex> lock(publish_mu_);
  const int64_t version = Current()->version + 1;
  auto snapshot = std::make_shared<const ModelSnapshot>(
      ModelSnapshot{std::move(model), version});
  // The one swap point: readers that loaded the old snapshot keep it
  // alive through their shared_ptr; new batches see the new one.
  snapshot_.store(std::move(snapshot), std::memory_order_release);
  VersionGauge().Set(static_cast<double>(version));
  SwapCounter().Increment();
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

Result<int64_t> ModelRegistry::PublishFromFile(
    const core::ModelConfig& config, const std::string& path) {
  auto model = std::make_shared<core::M2g4Rtp>(config);
  const Status status = model->Load(path);
  if (!status.ok()) {
    // A failed load never swaps: the previous snapshot keeps serving.
    // The counter makes silent rollout failures visible on /metrics.
    PublishFailureCounter().Increment();
    return status;
  }
  return Publish(std::move(model));
}

}  // namespace m2g::serve
