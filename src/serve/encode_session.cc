#include "serve/encode_session.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace m2g::serve {
namespace {

obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.session_hits");
  return c;
}

obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.session_misses");
  return c;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.session_evictions");
  return c;
}

}  // namespace

EncodeSessionStore::EncodeSessionStore(size_t byte_budget)
    : budget_(byte_budget) {}

std::shared_ptr<EncodeSession> EncodeSessionStore::Acquire(int courier_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(courier_id);
  if (it != entries_.end()) {
    HitsCounter().Increment();
    lru_.erase(it->second.lru_it);
    lru_.push_front(courier_id);
    it->second.lru_it = lru_.begin();
    return it->second.session;
  }
  MissesCounter().Increment();
  Entry entry;
  entry.session = std::make_shared<EncodeSession>();
  lru_.push_front(courier_id);
  entry.lru_it = lru_.begin();
  auto session = entry.session;
  entries_.emplace(courier_id, std::move(entry));
  return session;
}

void EncodeSessionStore::Release(int courier_id, size_t session_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(courier_id);
  // Already evicted while in use: the caller's shared_ptr was the only
  // remaining owner; nothing to account.
  if (it == entries_.end()) return;
  total_bytes_ -= it->second.bytes;
  it->second.bytes = session_bytes;
  total_bytes_ += session_bytes;
  EvictOverBudgetLocked();
}

void EncodeSessionStore::EvictOverBudgetLocked() {
  while (total_bytes_ > budget_ && entries_.size() > 1) {
    const int victim = lru_.back();
    auto it = entries_.find(victim);
    M2G_CHECK(it != entries_.end());
    total_bytes_ -= it->second.bytes;
    lru_.pop_back();
    entries_.erase(it);
    EvictionsCounter().Increment();
  }
}

size_t EncodeSessionStore::sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t EncodeSessionStore::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

}  // namespace m2g::serve
