#ifndef M2G_OBS_METRICS_H_
#define M2G_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace m2g::obs {

namespace internal {

/// Hot-path kill switch for *event* recording (counter increments, trace
/// spans, ring pushes). Gauges and direct Histogram::Record calls stay
/// live — they are either rare (per-epoch) or deliberate measurements
/// (the eval latency probes) that must work even when serving telemetry
/// is switched off for an A/B run.
extern std::atomic<bool> g_obs_enabled;

/// Per-metric storage is sharded by a small per-thread slot so the hot
/// path never contends: each thread writes (relaxed atomics) into its
/// own shard and readers merge all shards on demand. Threads beyond the
/// cap share the last slot — still race-free, just contended.
constexpr int kMaxShards = 64;

/// This thread's shard slot in [0, kMaxShards). Assigned on first use,
/// never reused (a dead thread's shard keeps its accumulated counts).
int ThreadSlot();

}  // namespace internal

/// Runtime switch for event recording (default on). Used by
/// bench_obs_overhead to A/B instrumented vs uninstrumented serving in
/// one binary; the M2G_OBS_DISABLED compile definition removes the same
/// call sites entirely.
void SetEnabled(bool enabled);
inline bool Enabled() {
  return internal::g_obs_enabled.load(std::memory_order_relaxed);
}

/// Monotonically increasing event count. Increment is lock-free
/// (one relaxed add on a thread-local shard); Value merges the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
#ifndef M2G_OBS_DISABLED
    if (Enabled()) IncrementImpl(delta);
#else
    (void)delta;
#endif
  }

  uint64_t Value() const;

 private:
  void IncrementImpl(uint64_t delta);

  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[internal::kMaxShards];
};

/// Last-written instantaneous value (queue depth, epoch loss, ...).
/// A single atomic — gauge writes are rare or already serialized by the
/// caller (the thread-pool queue mutex), so sharding buys nothing.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-side merge of one histogram: per-bucket counts (bucket i counts
/// values <= bounds[i], Prometheus `le` semantics; the last entry is the
/// overflow bucket) plus count/sum/min/max for mean and quantile reads.
struct HistogramSnapshot {
  std::vector<double> bounds;    // upper bounds, ascending, +inf implied
  std::vector<uint64_t> counts;  // size bounds.size() + 1
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Quantile estimate by linear interpolation inside the bucket that
  /// holds rank q*count. The first bucket interpolates up from the
  /// observed min, the overflow bucket from the last bound to the
  /// observed max, so estimates never leave the observed range.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram. Record is lock-free after a thread's first
/// touch: one bucket search plus relaxed atomic updates on the thread's
/// own shard. Snapshot merges shards in slot order (deterministic).
/// Usable standalone (the eval latency probes) or via MetricsRegistry.
class Histogram {
 public:
  /// `bounds` must be strictly ascending upper bucket bounds.
  explicit Histogram(std::vector<double> bounds);
  ~Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Always live (not gated by SetEnabled): direct callers use this as a
  /// measurement helper, and TraceSpan already gates before recording.
  void Record(double value);

  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Shard;
  Shard& ShardForThisThread();

  std::vector<double> bounds_;
  std::atomic<Shard*> shards_[internal::kMaxShards] = {};
};

/// Latency bucket ladder in milliseconds: 1-2.5-5 steps from 1 us to
/// 10 s. Shared by every latency histogram so exports line up.
const std::vector<double>& DefaultLatencyBucketsMs();

/// Name-keyed snapshot of every registered metric, sorted by name
/// (callback gauges are folded into `gauges`). The exporters consume
/// this, never the live registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// Process-wide registry of named metrics. Lookup takes a mutex — call
/// sites cache the returned reference (function-local static); the
/// returned objects live as long as the registry and their hot paths
/// never touch the registry lock again.
///
/// Names are dot-separated, lower_snake segments: `<layer>.<what>[.ms]`
/// (e.g. "serve.stage.encode.ms"). The Prometheus exporter maps them to
/// `m2g_<name with '.'->'_'>`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds);
  /// histogram(name, DefaultLatencyBucketsMs()).
  Histogram& latency_histogram(const std::string& name);

  /// Gauge whose value is pulled at snapshot time (monitoring counters
  /// owned by another subsystem, e.g. the tensor-pool hit/miss totals).
  void AddCallbackGauge(const std::string& name,
                        std::function<double()> fn);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> callback_gauges_;
};

}  // namespace m2g::obs

#endif  // M2G_OBS_METRICS_H_
