#include "obs/wide_event.h"

#include "obs/export.h"

namespace m2g::obs {
namespace {

Counter& RecordedCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("obs.wide_events.recorded");
  return c;
}

Counter& SampledOutCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("obs.wide_events.sampled_out");
  return c;
}

}  // namespace

WideEventSink& WideEventSink::Global() {
  static WideEventSink* sink = new WideEventSink();
  return *sink;
}

void WideEventSink::Configure(const WideEventOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  ring_.clear();
  ring_.reserve(options_.ring_capacity);
  next_ = 0;
  wrapped_ = false;
}

WideEventOptions WideEventSink::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void WideEventSink::RecordImpl(const WideEvent& event) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  const bool head_keep =
      options_.head_sample_every > 0 &&
      seq % static_cast<uint64_t>(options_.head_sample_every) == 0;
  const bool tail_keep = event.total_ms >= options_.tail_keep_over_ms;
  if (!head_keep && !tail_keep) {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    SampledOutCounter().Increment();
    return;
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  RecordedCounter().Increment();
  if (options_.ring_capacity == 0) return;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(event);
    next_ = ring_.size() % options_.ring_capacity;
    wrapped_ = ring_.size() == options_.ring_capacity && next_ == 0;
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % options_.ring_capacity;
  wrapped_ = true;
}

std::vector<WideEvent> WideEventSink::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WideEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + next_, ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + next_);
  } else {
    out = ring_;
  }
  return out;
}

void WideEventSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

std::string WideEventSink::ToJsonLine(const WideEvent& e) {
  std::string out = "{";
  auto field = [&out](const char* key, const std::string& value) {
    if (out.size() > 1) out += ", ";
    out += '"';
    out += key;
    out += "\": ";
    out += value;
  };
  field("trace_id", JsonNum(static_cast<double>(e.trace_id)));
  field("tag", "\"" + JsonEscape(e.tag) + "\"");
  field("model_version", JsonNum(static_cast<double>(e.model_version)));
  field("batch_size", JsonNum(e.batch_size));
  field("shed", e.shed ? "true" : "false");
  field("batched", e.batched ? "true" : "false");
  field("delta_encode", e.delta_encode ? "true" : "false");
  field("simd_tier", "\"" + JsonEscape(e.simd_tier) + "\"");
  field("locations", JsonNum(e.num_locations));
  field("aois", JsonNum(e.num_aois));
  field("beam_width", JsonNum(e.beam_width));
  field("route_length", JsonNum(e.route_length));
  field("total_ms", JsonNum(e.total_ms));
  field("feature_extract_ms", JsonNum(e.feature_extract_ms));
  field("queue_wait_ms", JsonNum(e.queue_wait_ms));
  field("graph_build_ms", JsonNum(e.graph_build_ms));
  field("encode_ms", JsonNum(e.encode_ms));
  field("decode_ms", JsonNum(e.decode_ms));
  field("eta_head_ms", JsonNum(e.eta_head_ms));
  field("pool_hit_delta", JsonNum(static_cast<double>(e.pool_hit_delta)));
  field("pool_miss_delta", JsonNum(static_cast<double>(e.pool_miss_delta)));
  out += "}";
  return out;
}

bool WideEventSink::WriteJsonl(const std::string& path) const {
  std::string text;
  for (const WideEvent& e : Recent()) {
    text += ToJsonLine(e);
    text += '\n';
  }
  return WriteFileAtomic(path, text);
}

}  // namespace m2g::obs
