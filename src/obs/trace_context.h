#ifndef M2G_OBS_TRACE_CONTEXT_H_
#define M2G_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace m2g::obs {

/// Identity of the trace a thread is currently working for. Spans opened
/// while a context is installed attach themselves to `trace_id` with
/// `span_id` as their parent, so nested TraceSpan scopes form a tree
/// without any argument plumbing. `trace_id == 0` means "no trace": spans
/// then record as flat ring events exactly as before request tracing
/// existed (the training spans stay flat on purpose).
///
/// The context is plain data so it can be captured on one thread (the
/// submitter parking in the batch queue) and replayed on another (the
/// batch leader attributing per-sample decode work back to the member
/// request that owns it).
struct TraceContext {
  uint64_t trace_id = 0;
  /// Innermost open span; 0 at the root, so the first span opened under a
  /// fresh context becomes the trace's root span.
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

/// Process-wide id allocator shared by trace and span ids: a relaxed
/// atomic counter starting at 1, so ids are unique, dense, and
/// deterministic for a deterministic workload. Tests inject their own
/// source with SetTraceIdSource (nullptr restores the counter) or rewind
/// the counter with ResetTraceIds.
uint64_t NextTraceId();
void SetTraceIdSource(uint64_t (*source)());
void ResetTraceIds(uint64_t next = 1);

/// This thread's installed context ({0, 0} when none).
TraceContext CurrentTraceContext();

/// RAII: installs `ctx` as this thread's current context and restores the
/// previous one on destruction. Used by the batch leader to switch into a
/// member's trace around that member's decode/ETA tail.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace m2g::obs

#endif  // M2G_OBS_TRACE_CONTEXT_H_
