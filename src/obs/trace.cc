#include "obs/trace.h"

#include <mutex>

namespace m2g::obs {
namespace {

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

double MsSinceProcessStart(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::milli>(t - ProcessStart())
      .count();
}

/// Fixed-capacity ring of completed spans. A mutex push is fine here:
/// spans complete a handful of times per multi-millisecond request, and
/// the overhead bench gates the total.
struct TraceRing {
  std::mutex mu;
  std::vector<TraceEvent> events;
  size_t capacity = 256;
  size_t next = 0;
  bool wrapped = false;

  void Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (capacity == 0) return;
    if (events.size() < capacity) {
      events.push_back(event);
      next = events.size() % capacity;
      wrapped = events.size() == capacity && next == 0;
      return;
    }
    events[next] = event;
    next = (next + 1) % capacity;
    wrapped = true;
  }
};

TraceRing& Ring() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

}  // namespace

void SetTraceRingCapacity(size_t capacity) {
  TraceRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.capacity = capacity;
  ring.events.clear();
  ring.events.reserve(capacity);
  ring.next = 0;
  ring.wrapped = false;
}

std::vector<TraceEvent> RecentTraces() {
  TraceRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  std::vector<TraceEvent> out;
  out.reserve(ring.events.size());
  if (ring.wrapped) {
    out.insert(out.end(), ring.events.begin() + ring.next,
               ring.events.end());
    out.insert(out.end(), ring.events.begin(),
               ring.events.begin() + ring.next);
  } else {
    out = ring.events;
  }
  return out;
}

void ClearTraces() {
  TraceRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events.clear();
  ring.next = 0;
  ring.wrapped = false;
}

void TraceSpan::Start(const char* stage, Histogram* hist) {
  stage_ = stage;
  hist_ = hist;
  active_ = true;
  // Latch the process-start origin before reading the span clock so the
  // very first span's offset cannot come out negative.
  ProcessStart();
  start_ = std::chrono::steady_clock::now();
}

void TraceSpan::Finish() {
  const auto end = std::chrono::steady_clock::now();
  TraceEvent event;
  event.stage = stage_;
  event.start_ms = MsSinceProcessStart(start_);
  event.duration_ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  event.thread_slot = internal::ThreadSlot();
  if (hist_ != nullptr) hist_->Record(event.duration_ms);
  Ring().Push(event);
}

Histogram& StageHistogram(const char* stage) {
  return MetricsRegistry::Global().latency_histogram(stage);
}

}  // namespace m2g::obs
