#include "obs/trace.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace m2g::obs {
namespace {

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

double MsSinceProcessStart(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::milli>(t - ProcessStart())
      .count();
}

/// Fixed-capacity ring of completed events. A mutex push is fine here:
/// spans complete a handful of times per multi-millisecond request, and
/// the overhead bench gates the total.
struct TraceRing {
  std::mutex mu;
  std::vector<TraceEvent> events;
  size_t capacity = 256;
  size_t next = 0;
  bool wrapped = false;

  void Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (capacity == 0) return;
    if (events.size() < capacity) {
      events.push_back(event);
      next = events.size() % capacity;
      wrapped = events.size() == capacity && next == 0;
      return;
    }
    events[next] = event;
    next = (next + 1) % capacity;
    wrapped = true;
  }
};

TraceRing& Ring() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

/// Same shape for finalized trees.
struct TreeRing {
  std::mutex mu;
  std::vector<TraceTree> trees;
  size_t capacity = 64;
  size_t next = 0;
  bool wrapped = false;

  void Push(TraceTree&& tree) {
    std::lock_guard<std::mutex> lock(mu);
    if (capacity == 0) return;
    if (trees.size() < capacity) {
      trees.push_back(std::move(tree));
      next = trees.size() % capacity;
      wrapped = trees.size() == capacity && next == 0;
      return;
    }
    trees[next] = std::move(tree);
    next = (next + 1) % capacity;
    wrapped = true;
  }
};

TreeRing& Trees() {
  static TreeRing* ring = new TreeRing();
  return *ring;
}

/// In-flight traces: trace id -> spans recorded so far. Spans can arrive
/// from any thread (a member's own thread plus the batch leader), so the
/// table is mutex-protected; a trace lives here only for the duration of
/// its request, then moves to the tree ring at finalization. Events for
/// unknown trace ids (already finalized, or begun while obs was toggled
/// off) are dropped.
struct ActiveTraces {
  std::mutex mu;
  std::unordered_map<uint64_t, std::vector<TraceEvent>> traces;

  void Begin(uint64_t trace_id) {
    std::lock_guard<std::mutex> lock(mu);
    traces[trace_id].reserve(8);
  }

  void Append(uint64_t trace_id, const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = traces.find(trace_id);
    if (it != traces.end()) it->second.push_back(event);
  }

  std::vector<TraceEvent> Take(uint64_t trace_id) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = traces.find(trace_id);
    if (it == traces.end()) return {};
    std::vector<TraceEvent> spans = std::move(it->second);
    traces.erase(it);
    return spans;
  }
};

ActiveTraces& Active() {
  static ActiveTraces* active = new ActiveTraces();
  return *active;
}

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t (*)()> g_trace_id_source{nullptr};

thread_local TraceContext t_trace_ctx;

void SetCurrentContext(const TraceContext& ctx) { t_trace_ctx = ctx; }

/// Adds `duration` into the WideEvent field owned by `stage`, so a
/// finalized tree and its wide event agree by construction. Stages the
/// wide event doesn't break out (cache builds nested inside decode,
/// the request root itself) are skipped — total_ms comes from the
/// RequestTrace's own wall clock.
void AccumulateStage(WideEvent* event, const char* stage,
                     double duration_ms) {
  if (std::strcmp(stage, "serve.stage.feature_extract.ms") == 0) {
    event->feature_extract_ms += duration_ms;
  } else if (std::strcmp(stage, "serve.batch.queue_wait.ms") == 0) {
    event->queue_wait_ms += duration_ms;
  } else if (std::strcmp(stage, "serve.stage.graph_build.ms") == 0) {
    event->graph_build_ms += duration_ms;
  } else if (std::strcmp(stage, "serve.stage.encode.ms") == 0) {
    event->encode_ms += duration_ms;
  } else if (std::strcmp(stage, "serve.stage.route_decode.ms") == 0) {
    event->decode_ms += duration_ms;
  } else if (std::strcmp(stage, "serve.stage.eta_head.ms") == 0) {
    event->eta_head_ms += duration_ms;
  }
}

}  // namespace

double UptimeMs() {
  return MsSinceProcessStart(std::chrono::steady_clock::now());
}

uint64_t NextTraceId() {
  uint64_t (*source)() = g_trace_id_source.load(std::memory_order_relaxed);
  if (source != nullptr) return source();
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

void SetTraceIdSource(uint64_t (*source)()) {
  g_trace_id_source.store(source, std::memory_order_relaxed);
}

void ResetTraceIds(uint64_t next) {
  g_trace_id_source.store(nullptr, std::memory_order_relaxed);
  g_next_trace_id.store(next == 0 ? 1 : next, std::memory_order_relaxed);
}

TraceContext CurrentTraceContext() { return t_trace_ctx; }

TraceContextScope::TraceContextScope(const TraceContext& ctx)
    : prev_(t_trace_ctx) {
  t_trace_ctx = ctx;
}

TraceContextScope::~TraceContextScope() { t_trace_ctx = prev_; }

void SetTraceRingCapacity(size_t capacity) {
  TraceRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.capacity = capacity;
  ring.events.clear();
  ring.events.reserve(capacity);
  ring.next = 0;
  ring.wrapped = false;
}

std::vector<TraceEvent> RecentTraces() {
  TraceRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  std::vector<TraceEvent> out;
  out.reserve(ring.events.size());
  if (ring.wrapped) {
    out.insert(out.end(), ring.events.begin() + ring.next,
               ring.events.end());
    out.insert(out.end(), ring.events.begin(),
               ring.events.begin() + ring.next);
  } else {
    out = ring.events;
  }
  return out;
}

void ClearTraces() {
  TraceRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events.clear();
  ring.next = 0;
  ring.wrapped = false;
}

void SetTraceTreeRingCapacity(size_t capacity) {
  TreeRing& ring = Trees();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.capacity = capacity;
  ring.trees.clear();
  ring.trees.reserve(capacity);
  ring.next = 0;
  ring.wrapped = false;
}

std::vector<TraceTree> RecentTraceTrees() {
  TreeRing& ring = Trees();
  std::lock_guard<std::mutex> lock(ring.mu);
  std::vector<TraceTree> out;
  out.reserve(ring.trees.size());
  if (ring.wrapped) {
    out.insert(out.end(), ring.trees.begin() + ring.next,
               ring.trees.end());
    out.insert(out.end(), ring.trees.begin(),
               ring.trees.begin() + ring.next);
  } else {
    out = ring.trees;
  }
  return out;
}

void ClearTraceTrees() {
  TreeRing& ring = Trees();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.trees.clear();
  ring.next = 0;
  ring.wrapped = false;
}

void TraceSpan::Start(const char* stage, Histogram* hist) {
  stage_ = stage;
  hist_ = hist;
  active_ = true;
  // Latch the process-start origin before reading the span clock so the
  // very first span's offset cannot come out negative.
  ProcessStart();
  const TraceContext ctx = CurrentTraceContext();
  if (ctx.active()) {
    trace_id_ = ctx.trace_id;
    parent_span_id_ = ctx.span_id;
    span_id_ = NextTraceId();
    SetCurrentContext(TraceContext{trace_id_, span_id_});
  }
  start_ = std::chrono::steady_clock::now();
}

void TraceSpan::Finish() {
  const auto end = std::chrono::steady_clock::now();
  active_ = false;
  duration_ms_ =
      std::chrono::duration<double, std::milli>(end - start_).count();
  TraceEvent event;
  event.stage = stage_;
  event.start_ms = MsSinceProcessStart(start_);
  event.duration_ms = duration_ms_;
  event.thread_slot = internal::ThreadSlot();
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_span_id = parent_span_id_;
  event.batch_size = batch_size_;
  if (hist_ != nullptr) hist_->Record(duration_ms_);
  if (trace_id_ != 0) {
    // Properly nested scope: restore the parent as the thread's innermost
    // open span before handing the event to the trace table.
    SetCurrentContext(TraceContext{trace_id_, parent_span_id_});
    Active().Append(trace_id_, event);
  } else {
    Ring().Push(event);
  }
}

void RecordExternalSpan(const TraceContext& ctx, const char* stage,
                        double start_ms, double duration_ms,
                        Histogram* hist, int batch_size) {
#ifndef M2G_OBS_DISABLED
  if (!Enabled()) return;
  if (hist != nullptr) hist->Record(duration_ms);
  if (!ctx.active()) return;
  TraceEvent event;
  event.stage = stage;
  event.start_ms = start_ms;
  event.duration_ms = duration_ms;
  event.thread_slot = internal::ThreadSlot();
  event.trace_id = ctx.trace_id;
  event.span_id = NextTraceId();
  event.parent_span_id = ctx.span_id;
  event.batch_size = batch_size;
  Active().Append(ctx.trace_id, event);
#else
  (void)ctx;
  (void)stage;
  (void)start_ms;
  (void)duration_ms;
  (void)hist;
  (void)batch_size;
#endif
}

void RecordSharedSpanRef(const TraceContext& ctx, const char* stage,
                         uint64_t ref_span_id, double start_ms,
                         double duration_ms, int batch_size) {
#ifndef M2G_OBS_DISABLED
  if (!Enabled() || !ctx.active()) return;
  TraceEvent event;
  event.stage = stage;
  event.start_ms = start_ms;
  event.duration_ms = duration_ms;
  event.thread_slot = internal::ThreadSlot();
  event.trace_id = ctx.trace_id;
  event.span_id = NextTraceId();
  event.parent_span_id = ctx.span_id;
  event.ref_span_id = ref_span_id;
  event.batch_size = batch_size;
  Active().Append(ctx.trace_id, event);
#else
  (void)ctx;
  (void)stage;
  (void)ref_span_id;
  (void)start_ms;
  (void)duration_ms;
  (void)batch_size;
#endif
}

RequestTrace::RequestTrace(const char* tag) {
#ifndef M2G_OBS_DISABLED
  if (!Enabled()) return;
  // A trace already owns this thread (e.g. a nested Handle under an
  // already-traced request): stay inert rather than shadow it.
  if (CurrentTraceContext().active()) return;
  active_ = true;
  event_.tag = tag;
  ctx_.trace_id = NextTraceId();
  ctx_.span_id = 0;
  prev_ = CurrentTraceContext();
  SetCurrentContext(ctx_);
  Active().Begin(ctx_.trace_id);
  start_ = std::chrono::steady_clock::now();
#else
  (void)tag;
#endif
}

RequestTrace::~RequestTrace() {
#ifndef M2G_OBS_DISABLED
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  SetCurrentContext(prev_);
  TraceTree tree;
  tree.trace_id = ctx_.trace_id;
  tree.tag = event_.tag;
  tree.spans = Active().Take(ctx_.trace_id);
  event_.trace_id = ctx_.trace_id;
  event_.total_ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  for (const TraceEvent& span : tree.spans) {
    AccumulateStage(&event_, span.stage, span.duration_ms);
  }
  Trees().Push(std::move(tree));
  WideEventSink::Global().Record(event_);
#endif
}

BatchTrace::BatchTrace(int batch_size) {
#ifndef M2G_OBS_DISABLED
  if (!Enabled()) return;
  // Unlike RequestTrace, an active context does NOT make the batch trace
  // inert: the leader executing a batch is itself a traced member, and
  // the shared graph/encode spans belong to the batch tree, not to the
  // leader's own request tree (which receives references like every
  // other member). Suspend the leader's context and restore it after.
  active_ = true;
  ctx_.trace_id = NextTraceId();
  ctx_.span_id = 0;
  prev_ = CurrentTraceContext();
  SetCurrentContext(ctx_);
  Active().Begin(ctx_.trace_id);
  static Histogram& hist = StageHistogram("serve.batch.execute.ms");
  root_ = new TraceSpan("serve.batch.execute.ms", &hist);
  root_->set_batch_size(batch_size);
#else
  (void)batch_size;
#endif
}

BatchTrace::~BatchTrace() {
#ifndef M2G_OBS_DISABLED
  if (!active_) return;
  delete root_;  // closes the root span into the trace table
  SetCurrentContext(prev_);
  TraceTree tree;
  tree.trace_id = ctx_.trace_id;
  tree.tag = "batch";
  tree.spans = Active().Take(ctx_.trace_id);
  Trees().Push(std::move(tree));
#endif
}

Histogram& StageHistogram(const char* stage) {
  return MetricsRegistry::Global().latency_histogram(stage);
}

}  // namespace m2g::obs
