#ifndef M2G_OBS_TRACE_H_
#define M2G_OBS_TRACE_H_

#include <chrono>
#include <vector>

#include "obs/metrics.h"

namespace m2g::obs {

/// One completed span, as kept in the process-wide trace ring. `stage`
/// points at the literal passed to TraceSpan (spans must be constructed
/// with string literals / static storage).
struct TraceEvent {
  const char* stage = nullptr;
  double start_ms = 0;     // steady-clock offset from process start
  double duration_ms = 0;
  int thread_slot = 0;
};

/// Resizes the ring of recent spans (default 256 events). 0 disables
/// trace retention entirely; spans then only feed their histograms.
void SetTraceRingCapacity(size_t capacity);

/// The retained spans, oldest first. A snapshot — safe to call while
/// spans complete concurrently.
std::vector<TraceEvent> RecentTraces();

/// Drops all retained spans (capacity unchanged).
void ClearTraces();

/// RAII stage timer: measures the enclosed scope and, on destruction,
/// records the duration into `hist` (typically the registry's latency
/// histogram for this stage name) and appends a TraceEvent to the ring.
/// `stage` must have static storage duration.
///
/// Cost when obs is enabled: two steady_clock reads, one histogram
/// record, one ring push. When disabled via SetEnabled(false) the
/// constructor is a single relaxed load; under M2G_OBS_DISABLED the
/// whole class compiles to nothing.
class TraceSpan {
 public:
  explicit TraceSpan(const char* stage, Histogram* hist = nullptr) {
#ifndef M2G_OBS_DISABLED
    if (Enabled()) Start(stage, hist);
#else
    (void)stage;
    (void)hist;
#endif
  }

  ~TraceSpan() {
#ifndef M2G_OBS_DISABLED
    if (active_) Finish();
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Start(const char* stage, Histogram* hist);
  void Finish();

  const char* stage_ = nullptr;
  Histogram* hist_ = nullptr;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_{};
};

/// The registry latency histogram spans for `stage` record into; call
/// sites cache the result in a function-local static so the registry
/// lock is taken once per stage name per process.
Histogram& StageHistogram(const char* stage);

}  // namespace m2g::obs

#endif  // M2G_OBS_TRACE_H_
