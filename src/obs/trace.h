#ifndef M2G_OBS_TRACE_H_
#define M2G_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "obs/wide_event.h"

namespace m2g::obs {

/// One completed span. `stage` points at the literal passed to TraceSpan
/// (spans must be constructed with string literals / static storage).
///
/// Spans come in two flavors depending on the thread's TraceContext at
/// construction: *flat* spans (`trace_id == 0`) go to the process-wide
/// recent-spans ring exactly as before request tracing existed (training
/// spans stay flat), while *traced* spans attach to the owning request's
/// span tree and surface through RecentTraceTrees() instead. Both flavors
/// feed their stage histogram identically.
struct TraceEvent {
  const char* stage = nullptr;
  double start_ms = 0;     // steady-clock offset from process start
  double duration_ms = 0;
  int thread_slot = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// When nonzero this event is a *reference* to a batch-amortized span
  /// owned by the batch trace (graph build / encode executed once for the
  /// whole micro-batch): `ref_span_id` names the shared span and
  /// `duration_ms` carries the shared duration so a member tree is
  /// self-contained for per-stage accounting.
  uint64_t ref_span_id = 0;
  /// Micro-batch size the span's work covered (1 for per-request work).
  int batch_size = 1;
};

/// Milliseconds since the process-wide steady-clock origin (the first
/// obs timestamp taken). Used by the admin endpoint's /healthz.
double UptimeMs();

/// Resizes the ring of recent flat spans (default 256 events). 0 disables
/// retention entirely; spans then only feed their histograms.
void SetTraceRingCapacity(size_t capacity);

/// The retained flat spans, oldest first. A snapshot — safe to call while
/// spans complete concurrently.
std::vector<TraceEvent> RecentTraces();

/// Drops all retained flat spans (capacity unchanged).
void ClearTraces();

/// A finalized request span tree: every span recorded under one trace id,
/// in completion order. Parent/child edges are encoded in the events
/// (`parent_span_id == 0` marks a root).
struct TraceTree {
  uint64_t trace_id = 0;
  std::string tag;
  std::vector<TraceEvent> spans;
};

/// Ring of recently finalized trace trees (default 64). 0 disables
/// retention; traces then only feed wide events and histograms.
void SetTraceTreeRingCapacity(size_t capacity);
std::vector<TraceTree> RecentTraceTrees();
void ClearTraceTrees();

/// RAII stage timer: measures the enclosed scope and, on destruction,
/// records the duration into `hist` (typically the registry's latency
/// histogram for this stage name) and appends a TraceEvent to the flat
/// ring or — when the thread has an active TraceContext — to the owning
/// trace's span tree. While open, a traced span installs itself as the
/// thread's current context so nested spans become its children.
/// `stage` must have static storage duration.
///
/// Cost when obs is enabled: two steady_clock reads, one histogram
/// record, one ring push. When disabled via SetEnabled(false) the
/// constructor is a single relaxed load; under M2G_OBS_DISABLED the
/// whole class compiles to nothing.
class TraceSpan {
 public:
  explicit TraceSpan(const char* stage, Histogram* hist = nullptr) {
#ifndef M2G_OBS_DISABLED
    if (Enabled()) Start(stage, hist);
#else
    (void)stage;
    (void)hist;
#endif
  }

  ~TraceSpan() {
#ifndef M2G_OBS_DISABLED
    if (active_) Finish();
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span now instead of at scope exit and returns its duration
  /// in ms (0 if the span never started). Lets batch code close a shared
  /// stage span and fan its id + duration out to member traces.
  double Stop() {
#ifndef M2G_OBS_DISABLED
    if (active_) {
      Finish();
      return duration_ms_;
    }
#endif
    return 0;
  }

  /// This span's id within its trace (0 when flat or not started).
  uint64_t span_id() const {
#ifndef M2G_OBS_DISABLED
    return span_id_;
#else
    return 0;
#endif
  }

  /// Tags the recorded event with the micro-batch size its work covered.
  void set_batch_size(int batch_size) {
#ifndef M2G_OBS_DISABLED
    batch_size_ = batch_size;
#else
    (void)batch_size;
#endif
  }

 private:
  void Start(const char* stage, Histogram* hist);
  void Finish();

  const char* stage_ = nullptr;
  Histogram* hist_ = nullptr;
  bool active_ = false;
  int batch_size_ = 1;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  double duration_ms_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

/// Records a span measured externally (start/duration already known) into
/// `ctx`'s trace as a child of ctx.span_id, also feeding `hist` when
/// given. Used by the batch leader to attribute each member's queue wait
/// (submit -> dispatch) measured across threads. No-op when obs is
/// disabled or `ctx` is inactive.
void RecordExternalSpan(const TraceContext& ctx, const char* stage,
                        double start_ms, double duration_ms,
                        Histogram* hist = nullptr, int batch_size = 1);

/// Records a *reference* to a batch-amortized span into `ctx`'s trace:
/// the member tree gains a child of ctx.span_id named `stage` whose
/// duration is the shared span's duration and whose ref_span_id points at
/// the shared span in the batch trace. Does NOT feed the stage histogram
/// (the shared span already did, once). No-op when disabled or inactive.
void RecordSharedSpanRef(const TraceContext& ctx, const char* stage,
                         uint64_t ref_span_id, double start_ms,
                         double duration_ms, int batch_size);

/// RAII owner of one request-scoped trace. When obs is enabled and no
/// trace is already active on this thread, the constructor allocates a
/// trace id and installs a TraceContext, so every TraceSpan in the scope
/// (and every span recorded under a captured copy of context() on other
/// threads) lands in this trace. The destructor finalizes: sums the
/// per-stage durations into the embedded WideEvent, stamps total wall
/// time, pushes the finished TraceTree to the tree ring, and records the
/// wide event through WideEventSink::Global().
///
/// When a trace is already active on the thread the new RequestTrace is
/// inert (inner Handle calls don't shadow an outer trace). Fields the obs
/// layer can't know (model version, batch size, level sizes, ...) are
/// filled by the caller via event() before scope exit.
class RequestTrace {
 public:
  explicit RequestTrace(const char* tag);
  ~RequestTrace();

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  bool active() const { return active_; }
  uint64_t trace_id() const { return ctx_.trace_id; }

  /// The context to capture for cross-thread span attribution (inactive
  /// context when the trace is inert).
  TraceContext context() const { return CurrentTraceContext(); }

  /// Caller-filled request facts, merged with the per-stage sums at
  /// finalization. Safe to touch even when inactive (writes are dropped).
  WideEvent& event() { return event_; }

 private:
  bool active_ = false;
  TraceContext ctx_;
  TraceContext prev_;
  WideEvent event_;
  std::chrono::steady_clock::time_point start_{};
};

/// RAII owner of the batch-leader trace wrapping one micro-batch
/// execution: opens a root span `serve.batch.execute.ms` tagged with the
/// batch size, so the batch-amortized graph/encode spans recorded inside
/// PredictBatch form a small tree of their own ("batch" tag in the tree
/// ring) that member traces reference by span id. The leader thread is
/// usually mid-request itself; the batch trace *suspends* that context
/// (instead of going inert) and restores it on destruction, so the
/// leader's own request tree receives shared-span references like every
/// other member rather than absorbing the shared spans directly.
class BatchTrace {
 public:
  explicit BatchTrace(int batch_size);
  ~BatchTrace();

  BatchTrace(const BatchTrace&) = delete;
  BatchTrace& operator=(const BatchTrace&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  TraceContext ctx_;
  TraceContext prev_;
  TraceSpan* root_ = nullptr;
};

/// The registry latency histogram spans for `stage` record into; call
/// sites cache the result in a function-local static so the registry
/// lock is taken once per stage name per process.
Histogram& StageHistogram(const char* stage);

}  // namespace m2g::obs

#endif  // M2G_OBS_TRACE_H_
