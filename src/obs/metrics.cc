#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace m2g::obs {

namespace internal {

std::atomic<bool> g_obs_enabled{true};

int ThreadSlot() {
  static std::atomic<int> next{0};
  thread_local const int slot = [] {
    const int s = next.fetch_add(1, std::memory_order_relaxed);
    return s < kMaxShards ? s : kMaxShards - 1;
  }();
  return slot;
}

namespace {

/// Relaxed CAS accumulation — std::atomic<double>::fetch_add is C++20
/// but not yet universal across the toolchains CI builds with.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_obs_enabled.store(enabled, std::memory_order_relaxed);
}

void Counter::IncrementImpl(uint64_t delta) {
  cells_[internal::ThreadSlot()].v.fetch_add(delta,
                                             std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Add(double delta) { internal::AtomicAdd(&value_, delta); }

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Bucket edges, clamped to the observed range so a sparse
      // histogram never reports a quantile outside [min, max].
      double lo = i == 0 ? min : std::max(min, bounds[i - 1]);
      double hi = i < bounds.size() ? std::min(max, bounds[i]) : max;
      if (hi < lo) hi = lo;
      const double frac =
          (target - static_cast<double>(cumulative)) / in_bucket;
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return max;
}

/// One thread's slice of a histogram. All fields are relaxed atomics so
/// concurrent Snapshot reads are race-free; only the owning thread (or
/// the overflow-slot sharers) writes.
struct Histogram::Shard {
  explicit Shard(size_t num_buckets) : counts(num_buckets) {}

  std::vector<std::atomic<uint64_t>> counts;
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

Histogram::~Histogram() {
  for (std::atomic<Shard*>& slot : shards_) {
    delete slot.load(std::memory_order_acquire);
  }
}

Histogram::Shard& Histogram::ShardForThisThread() {
  std::atomic<Shard*>& slot = shards_[internal::ThreadSlot()];
  Shard* shard = slot.load(std::memory_order_acquire);
  if (shard == nullptr) {
    Shard* fresh = new Shard(bounds_.size() + 1);
    if (slot.compare_exchange_strong(shard, fresh,
                                     std::memory_order_acq_rel)) {
      return *fresh;
    }
    delete fresh;  // another thread sharing this slot won the race
  }
  return *shard;
}

void Histogram::Record(double value) {
  Shard& shard = ShardForThisThread();
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(&shard.sum, value);
  internal::AtomicMin(&shard.min, value);
  internal::AtomicMax(&shard.max, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const std::atomic<Shard*>& slot : shards_) {
    const Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      snap.counts[i] += shard->counts[i].load(std::memory_order_relaxed);
    }
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    min = std::min(min, shard->min.load(std::memory_order_relaxed));
    max = std::max(max, shard->max.load(std::memory_order_relaxed));
  }
  snap.min = snap.count > 0 ? min : 0.0;
  snap.max = snap.count > 0 ? max : 0.0;
  return snap;
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> buckets = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,  0.25,
      0.5,   1,      2.5,   5,    10,    25,   50,   100,
      250,   500,    1000,  2500, 5000,  10000};
  return buckets;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

Histogram& MetricsRegistry::latency_histogram(const std::string& name) {
  return histogram(name, DefaultLatencyBucketsMs());
}

void MetricsRegistry::AddCallbackGauge(const std::string& name,
                                       std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_gauges_[name] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  // Live and callback gauges share one sorted namespace.
  std::map<std::string, double> gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = g->Value();
  for (const auto& [name, fn] : callback_gauges_) gauges[name] = fn();
  snap.gauges.assign(gauges.begin(), gauges.end());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

}  // namespace m2g::obs
