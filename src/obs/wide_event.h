#ifndef M2G_OBS_WIDE_EVENT_H_
#define M2G_OBS_WIDE_EVENT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace m2g::obs {

/// One structured event per served request: everything a latency or
/// drift investigation wants to slice by, denormalized into a single
/// record ("wide event" / canonical log line). Serialized as one JSON
/// object per line (JSONL) by ToJsonLine / WriteJsonl and served live by
/// the admin endpoint's /events route.
struct WideEvent {
  uint64_t trace_id = 0;
  /// Short request-class label ("rtp", "eval", ...). Escaped on output —
  /// arbitrary bytes are safe.
  std::string tag;
  int64_t model_version = 0;
  /// Size of the micro-batch this request was served in (1 when batching
  /// is off or the request ran inline).
  int batch_size = 1;
  /// True when the batch queue was full and the request was shed to the
  /// inline single-request path.
  bool shed = false;
  /// True when the service routed the request through the batch
  /// scheduler (even if it ended up in a batch of one).
  bool batched = false;
  /// True when the request was served through an encode session's delta
  /// path (incremental re-encode) rather than a full graph encode.
  bool delta_encode = false;
  /// SIMD dispatch tier the tensor kernels ran at ("scalar", "sse2",
  /// "avx2"). Filled by the serving layer from simd::ActiveTier() —
  /// obs/ sits below tensor/, so the value arrives as a plain string.
  /// Constant within a process unless a kill switch flips it, but
  /// recorded per event so mixed fleets slice latency by tier.
  std::string simd_tier;
  int num_locations = 0;
  int num_aois = 0;
  int beam_width = 0;
  int route_length = 0;
  double total_ms = 0;
  double feature_extract_ms = 0;
  double queue_wait_ms = 0;
  double graph_build_ms = 0;
  double encode_ms = 0;
  double decode_ms = 0;
  double eta_head_ms = 0;
  /// Process-wide tensor-pool counter movement across the request (an
  /// attribution approximation under concurrency: concurrent requests'
  /// pool traffic lands in whichever window observes it).
  uint64_t pool_hit_delta = 0;
  uint64_t pool_miss_delta = 0;
};

/// Sampling and retention knobs. The defaults keep every event (head
/// sampling off at 1) — bench_obs_overhead gates that a fully-enabled
/// pipeline still costs <= 3%, so sampling is a volume knob for log
/// shipping, not a performance requirement.
struct WideEventOptions {
  /// Keep every Nth event (1 = all, 0 = none except tail). Head sampling
  /// is a deterministic modulo on the event sequence number.
  int head_sample_every = 1;
  /// Requests at or over this end-to-end latency are always kept, even
  /// when head sampling would drop them (tail sampling: the slow
  /// requests are the ones worth debugging).
  double tail_keep_over_ms = 250.0;
  /// Ring of recent kept events served by /events.
  size_t ring_capacity = 256;
};

/// Process-wide sink for wide events: a bounded in-memory ring (for the
/// admin endpoint) plus JSONL serialization helpers. Record is gated by
/// obs::SetEnabled and compiled out under M2G_OBS_DISABLED, like every
/// other event path.
class WideEventSink {
 public:
  static WideEventSink& Global();

  WideEventSink() = default;
  WideEventSink(const WideEventSink&) = delete;
  WideEventSink& operator=(const WideEventSink&) = delete;

  void Configure(const WideEventOptions& options);
  WideEventOptions options() const;

  void Record(const WideEvent& event) {
#ifndef M2G_OBS_DISABLED
    if (Enabled()) RecordImpl(event);
#else
    (void)event;
#endif
  }

  /// Kept events, oldest first (snapshot).
  std::vector<WideEvent> Recent() const;
  void Clear();

  /// Events kept / dropped by head sampling since process start (also
  /// exported as obs.wide_events.recorded / obs.wide_events.sampled_out).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  /// One RFC 8259 JSON object, no trailing newline.
  static std::string ToJsonLine(const WideEvent& event);

  /// Writes the recent ring as JSON lines, atomically (tmp + rename).
  bool WriteJsonl(const std::string& path) const;

 private:
  void RecordImpl(const WideEvent& event);

  mutable std::mutex mu_;
  WideEventOptions options_;
  std::vector<WideEvent> ring_;
  size_t next_ = 0;
  bool wrapped_ = false;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> sampled_out_{0};
};

}  // namespace m2g::obs

#endif  // M2G_OBS_WIDE_EVENT_H_
