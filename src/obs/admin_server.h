#ifndef M2G_OBS_ADMIN_SERVER_H_
#define M2G_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace m2g::obs {

struct AdminOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back via
  /// port() after Start succeeds).
  int port = 0;
  /// Loopback by default: the admin surface exposes internal state and
  /// must be opted in to a wider interface explicitly.
  std::string bind_address = "127.0.0.1";
  /// Optional extra `"key": value` JSON pairs (comma-separated, no
  /// braces) appended to the /healthz object — the serving layer uses
  /// this to report model version and registry state without obs/
  /// depending on serve/.
  std::function<std::string()> extra_health_json;
};

/// One routed response, separated from the socket plumbing so routing is
/// unit-testable without binding a port.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal blocking HTTP/1.1 admin endpoint for live telemetry pulls:
///
///   GET /             route index
///   GET /metrics      Prometheus text exposition
///   GET /metrics.json JSON metrics snapshot
///   GET /traces       recent trace trees (JSON)
///   GET /events       recent wide events (JSON)
///   GET /healthz      liveness + uptime + caller-supplied fields
///
/// Deliberately dependency-free (raw POSIX sockets, one std::thread per
/// connection): obs/ sits below common/, so it cannot use ThreadPool,
/// Status, or logging. An admin scrape is rare and small; per-connection
/// threads are reaped opportunistically and joined on Stop. Not a
/// general-purpose HTTP server: GET only, Connection: close, no TLS —
/// bind it to loopback (the default) or a trusted network.
class AdminServer {
 public:
  explicit AdminServer(AdminOptions options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens, and starts the accept thread. Returns false (and
  /// fills *error when given) if the socket setup fails or the server is
  /// already running.
  bool Start(std::string* error = nullptr);

  /// Stops accepting, closes the listen socket, and joins every
  /// connection thread. Idempotent; also called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves ephemeral port 0); 0 before Start.
  int port() const { return port_; }

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Pure routing: maps a request path (query string ignored) to the
  /// response. Public for tests.
  HttpResponse HandlePath(const std::string& path) const;

 private:
  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  void ReapFinishedLocked();

  AdminOptions options_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<uint64_t> requests_{0};
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace m2g::obs

#endif  // M2G_OBS_ADMIN_SERVER_H_
