#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "obs/trace.h"
#include "obs/wide_event.h"

namespace m2g::obs {
namespace {

std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

/// `serve.stage.encode.ms` -> `m2g_serve_stage_encode_ms`.
std::string PromName(const std::string& name) {
  std::string out = "m2g_";
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

void AppendJsonKey(std::string* out, const std::string& key) {
  out->push_back('"');
  *out += key;  // registry names never need escaping
  *out += "\":";
}

void AppendSpanJson(std::string* out, const std::vector<TraceEvent>& spans,
                    const std::vector<std::vector<size_t>>& children,
                    size_t index, int depth) {
  const TraceEvent& e = spans[index];
  *out += "{\"stage\": \"";
  *out += JsonEscape(e.stage != nullptr ? e.stage : "");
  *out += "\", \"span_id\": " + Num(e.span_id);
  *out += ", \"parent_span_id\": " + Num(e.parent_span_id);
  if (e.ref_span_id != 0) {
    *out += ", \"ref_span_id\": " + Num(e.ref_span_id);
  }
  *out += ", \"batch_size\": " + Num(static_cast<double>(e.batch_size));
  *out += ", \"start_ms\": " + Num(e.start_ms);
  *out += ", \"duration_ms\": " + Num(e.duration_ms);
  *out += ", \"thread_slot\": " + Num(static_cast<double>(e.thread_slot));
  *out += ", \"children\": [";
  // Depth guard: trace trees are a few levels deep by construction; a
  // corrupted parent chain must not blow the stack.
  if (depth < 32) {
    bool first = true;
    for (size_t child : children[index]) {
      if (!first) *out += ", ";
      first = false;
      AppendSpanJson(out, spans, children, child, depth + 1);
    }
  }
  *out += "]}";
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PromName(name);
    if (prom.size() < 6 || prom.compare(prom.size() - 6, 6, "_total") != 0) {
      prom += "_total";
    }
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + Num(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + Num(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += prom + "_bucket{le=\"" + Num(h.bounds[i]) + "\"} " +
             Num(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + Num(h.count) + "\n";
    out += prom + "_sum " + Num(h.sum) + "\n";
    out += prom + "_count " + Num(h.count) + "\n";
  }
  return out;
}

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " " + Num(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " " + Num(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " {\"count\": " + Num(h.count) + ", \"sum\": " + Num(h.sum) +
           ", \"min\": " + Num(h.min) + ", \"max\": " + Num(h.max) +
           ", \"mean\": " + Num(h.mean()) +
           ", \"p50\": " + Num(h.Quantile(0.50)) +
           ", \"p95\": " + Num(h.Quantile(0.95)) +
           ", \"p99\": " + Num(h.Quantile(0.99)) + ", \"buckets\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < h.bounds.size() ? Num(h.bounds[i]) : "\"+Inf\"";
      out += ", \"count\": " + Num(h.counts[i]) + "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string ExportPrometheus() {
  return ExportPrometheus(MetricsRegistry::Global().Snapshot());
}

std::string ExportJson() {
  return ExportJson(MetricsRegistry::Global().Snapshot());
}

std::string ExportTracesJson() {
  const std::vector<TraceTree> trees = RecentTraceTrees();
  std::string out = "[";
  bool first_tree = true;
  for (const TraceTree& tree : trees) {
    out += first_tree ? "\n  " : ",\n  ";
    first_tree = false;
    out += "{\"trace_id\": " + Num(tree.trace_id) + ", \"tag\": \"" +
           JsonEscape(tree.tag) + "\", \"spans\": [";
    // Index spans by id to build parent -> children edges; spans whose
    // parent is 0 or absent (e.g. the trace outlived part of the ring)
    // render as roots.
    const std::vector<TraceEvent>& spans = tree.spans;
    std::vector<std::vector<size_t>> children(spans.size());
    std::vector<bool> is_root(spans.size(), true);
    for (size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].parent_span_id == 0) continue;
      for (size_t j = 0; j < spans.size(); ++j) {
        if (j != i && spans[j].span_id == spans[i].parent_span_id) {
          children[j].push_back(i);
          is_root[i] = false;
          break;
        }
      }
    }
    bool first_span = true;
    for (size_t i = 0; i < spans.size(); ++i) {
      if (!is_root[i]) continue;
      if (!first_span) out += ", ";
      first_span = false;
      AppendSpanJson(&out, spans, children, i, 0);
    }
    out += "]}";
  }
  out += "\n]\n";
  return out;
}

std::string ExportWideEventsJson() {
  const std::vector<WideEvent> events = WideEventSink::Global().Recent();
  std::string out = "[";
  bool first = true;
  for (const WideEvent& e : events) {
    out += first ? "\n  " : ",\n  ";
    first = false;
    out += WideEventSink::ToJsonLine(e);
  }
  out += "\n]\n";
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNum(double v) { return Num(v); }

bool WriteFileAtomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fclose(f) == 0 && written == text.size();
  if (!flushed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool WriteMetricsFile(const std::string& path) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  return WriteFileAtomic(path, json ? ExportJson() : ExportPrometheus());
}

}  // namespace m2g::obs
