#include "obs/export.h"

#include <cctype>
#include <cstdio>

namespace m2g::obs {
namespace {

/// Shortest-faithful double formatting: integers print bare ("42"),
/// everything else up to 9 significant digits — deterministic across
/// platforms for the value ranges metrics produce.
std::string Num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

/// `serve.stage.encode.ms` -> `m2g_serve_stage_encode_ms`.
std::string PromName(const std::string& name) {
  std::string out = "m2g_";
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

void AppendJsonKey(std::string* out, const std::string& key) {
  out->push_back('"');
  *out += key;  // registry names never need escaping
  *out += "\":";
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PromName(name);
    if (prom.size() < 6 || prom.compare(prom.size() - 6, 6, "_total") != 0) {
      prom += "_total";
    }
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + Num(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + Num(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += prom + "_bucket{le=\"" + Num(h.bounds[i]) + "\"} " +
             Num(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + Num(h.count) + "\n";
    out += prom + "_sum " + Num(h.sum) + "\n";
    out += prom + "_count " + Num(h.count) + "\n";
  }
  return out;
}

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " " + Num(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " " + Num(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " {\"count\": " + Num(h.count) + ", \"sum\": " + Num(h.sum) +
           ", \"min\": " + Num(h.min) + ", \"max\": " + Num(h.max) +
           ", \"mean\": " + Num(h.mean()) +
           ", \"p50\": " + Num(h.Quantile(0.50)) +
           ", \"p95\": " + Num(h.Quantile(0.95)) +
           ", \"p99\": " + Num(h.Quantile(0.99)) + ", \"buckets\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < h.bounds.size() ? Num(h.bounds[i]) : "\"+Inf\"";
      out += ", \"count\": " + Num(h.counts[i]) + "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string ExportPrometheus() {
  return ExportPrometheus(MetricsRegistry::Global().Snapshot());
}

std::string ExportJson() {
  return ExportJson(MetricsRegistry::Global().Snapshot());
}

bool WriteMetricsFile(const std::string& path) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string text = json ? ExportJson() : ExportPrometheus();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0 && written == text.size();
  return ok;
}

}  // namespace m2g::obs
