#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wide_event.h"

namespace m2g::obs {
namespace {

Counter& AdminRequestsCounter() {
  static Counter& c = MetricsRegistry::Global().counter("obs.admin.requests");
  return c;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

std::string ErrnoString(const char* what) {
  std::string out = what;
  out += ": ";
  out += std::strerror(errno);
  return out;
}

}  // namespace

AdminServer::AdminServer(AdminOptions options)
    : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

bool AdminServer::Start(std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    return fail("admin server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(ErrnoString("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return fail("invalid bind address: " + options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = ErrnoString("bind");
    ::close(fd);
    return fail(message);
  }
  if (::listen(fd, 16) != 0) {
    const std::string message = ErrnoString("listen");
    ::close(fd);
    return fail(message);
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(): shutdown makes the blocked call return on Linux;
  // closing the fd covers platforms where it does not.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
}

void AdminServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listen socket closed (Stop) or unrecoverable: exit the loop.
      return;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->thread = std::thread([this, conn, fd] {
      ServeConnection(fd);
      conn->done.store(true, std::memory_order_release);
    });
  }
}

void AdminServer::ReapFinishedLocked() {
  for (size_t i = 0; i < conns_.size();) {
    if (conns_[i]->done.load(std::memory_order_acquire)) {
      if (conns_[i]->thread.joinable()) conns_[i]->thread.join();
      conns_.erase(conns_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

void AdminServer::ServeConnection(int fd) {
  // Read until the end of the request head (we ignore any body: GET
  // only). A tiny fixed cap keeps a misbehaving client from buffering
  // unbounded data into an admin process.
  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  HttpResponse response;
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.compare(0, 4, "GET ") != 0) {
    response.status = request.empty() ? 400 : 405;
    response.body = request.empty() ? "empty request\n" : "GET only\n";
  } else {
    const size_t path_end = line.find(' ', 4);
    std::string path = path_end == std::string::npos
                           ? line.substr(4)
                           : line.substr(4, path_end - 4);
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    response = HandlePath(path);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  AdminRequestsCounter().Increment();
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  const std::string payload = head + response.body;
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n =
        ::send(fd, payload.data() + sent, payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

HttpResponse AdminServer::HandlePath(const std::string& path) const {
  HttpResponse response;
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = ExportPrometheus();
  } else if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = ExportJson();
  } else if (path == "/traces") {
    response.content_type = "application/json";
    response.body = ExportTracesJson();
  } else if (path == "/events") {
    response.content_type = "application/json";
    response.body = ExportWideEventsJson();
  } else if (path == "/healthz") {
    response.content_type = "application/json";
    std::string body = "{\"status\": \"ok\", \"uptime_ms\": " +
                       JsonNum(UptimeMs()) + ", \"obs_enabled\": ";
    body += Enabled() ? "true" : "false";
    body += ", \"admin_requests\": " +
            JsonNum(static_cast<double>(requests_served()));
    if (options_.extra_health_json) {
      const std::string extra = options_.extra_health_json();
      if (!extra.empty()) {
        body += ", ";
        body += extra;
      }
    }
    body += "}\n";
    response.body = body;
  } else if (path == "/" || path.empty()) {
    response.body =
        "m2g admin endpoint\n"
        "  /metrics       Prometheus text\n"
        "  /metrics.json  JSON metrics snapshot\n"
        "  /traces        recent trace trees (JSON)\n"
        "  /events        recent wide events (JSON)\n"
        "  /healthz       liveness + model state\n";
  } else {
    response.status = 404;
    response.body = "not found: " + path + "\n";
  }
  return response;
}

}  // namespace m2g::obs
