#ifndef M2G_OBS_EXPORT_H_
#define M2G_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace m2g::obs {

/// Prometheus text exposition (# TYPE lines, `_total` counters,
/// cumulative `_bucket{le=...}` histogram series plus `_sum`/`_count`).
/// Registry names map to `m2g_` + name with '.' -> '_'.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, sum, min, max, mean, p50, p95, p99, buckets: [...]}}}.
/// Names keep their dotted registry form.
std::string ExportJson(const MetricsSnapshot& snapshot);

/// Convenience overloads over MetricsRegistry::Global().Snapshot().
std::string ExportPrometheus();
std::string ExportJson();

/// Writes the global registry snapshot to `path`: JSON when the path
/// ends in ".json", Prometheus text otherwise. Returns false on I/O
/// failure.
bool WriteMetricsFile(const std::string& path);

}  // namespace m2g::obs

#endif  // M2G_OBS_EXPORT_H_
