#ifndef M2G_OBS_EXPORT_H_
#define M2G_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace m2g::obs {

/// Prometheus text exposition (# TYPE lines, `_total` counters,
/// cumulative `_bucket{le=...}` histogram series plus `_sum`/`_count`).
/// Registry names map to `m2g_` + name with '.' -> '_'.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, sum, min, max, mean, p50, p95, p99, buckets: [...]}}}.
/// Names keep their dotted registry form.
std::string ExportJson(const MetricsSnapshot& snapshot);

/// Convenience overloads over MetricsRegistry::Global().Snapshot().
std::string ExportPrometheus();
std::string ExportJson();

/// The recent trace-tree ring as a JSON array of nested trees:
/// [{"trace_id", "tag", "spans": [{stage, span_id, parent_span_id,
/// ref_span_id, batch_size, start_ms, duration_ms, thread_slot,
/// children: [...]}]}]. Orphaned spans (parent missing from the tree)
/// surface as extra roots rather than being dropped.
std::string ExportTracesJson();

/// The recent wide-event ring as a JSON array (same objects as the
/// JSONL lines, wrapped in [...]).
std::string ExportWideEventsJson();

/// RFC 8259 string escaping: quotes, backslash, and control characters
/// (as \uXXXX). Returns the escaped body without surrounding quotes.
std::string JsonEscape(const std::string& s);

/// Shortest-faithful number formatting shared by all obs JSON output:
/// integral values print bare ("42"), everything else up to 9
/// significant digits; NaN/Inf (not valid JSON) print as null.
std::string JsonNum(double v);

/// Writes `text` to `path` atomically: writes `path` + ".tmp" then
/// renames over `path`, so a concurrent reader sees either the old or
/// the new content, never a half-written file. Returns false on I/O
/// failure (the tmp file is removed on a failed write).
bool WriteFileAtomic(const std::string& path, const std::string& text);

/// Writes the global registry snapshot to `path`: JSON when the path
/// ends in ".json", Prometheus text otherwise. Atomic (tmp + rename).
/// Returns false on I/O failure.
bool WriteMetricsFile(const std::string& path);

}  // namespace m2g::obs

#endif  // M2G_OBS_EXPORT_H_
