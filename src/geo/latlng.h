#ifndef M2G_GEO_LATLNG_H_
#define M2G_GEO_LATLNG_H_

#include <vector>

namespace m2g::geo {

/// A WGS-84 coordinate. The synthetic city lives around Hangzhou
/// (30.25 N, 120.17 E) so projection errors match the paper's setting.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;
};

/// Great-circle distance in meters (haversine).
double HaversineMeters(const LatLng& a, const LatLng& b);

/// Fast equirectangular approximation in meters; accurate to <0.1% at
/// city scale and ~3x cheaper. Used in feature extraction hot paths.
double ApproxMeters(const LatLng& a, const LatLng& b);

/// Arithmetic centroid (fine for city-scale clusters).
LatLng Centroid(const std::vector<LatLng>& points);

/// Offsets `origin` by the given east/north displacement in meters.
LatLng OffsetMeters(const LatLng& origin, double east_m, double north_m);

}  // namespace m2g::geo

#endif  // M2G_GEO_LATLNG_H_
