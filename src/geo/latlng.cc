#include "geo/latlng.h"

#include <cmath>

#include "common/check.h"

namespace m2g::geo {
namespace {

constexpr double kEarthRadiusM = 6371000.0;
constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

double HaversineMeters(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlng = (b.lng - a.lng) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) *
                       std::sin(dlng / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(s)));
}

double ApproxMeters(const LatLng& a, const LatLng& b) {
  const double mean_lat = 0.5 * (a.lat + b.lat) * kDegToRad;
  const double dx = (b.lng - a.lng) * kDegToRad * std::cos(mean_lat);
  const double dy = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusM * std::sqrt(dx * dx + dy * dy);
}

LatLng Centroid(const std::vector<LatLng>& points) {
  M2G_CHECK(!points.empty());
  LatLng c;
  for (const LatLng& p : points) {
    c.lat += p.lat;
    c.lng += p.lng;
  }
  c.lat /= static_cast<double>(points.size());
  c.lng /= static_cast<double>(points.size());
  return c;
}

LatLng OffsetMeters(const LatLng& origin, double east_m, double north_m) {
  const double dlat = north_m / kEarthRadiusM / kDegToRad;
  const double dlng = east_m / (kEarthRadiusM * std::cos(origin.lat * kDegToRad)) / kDegToRad;
  return {origin.lat + dlat, origin.lng + dlng};
}

}  // namespace m2g::geo
